"""Section 5 characterization experiments (Figures 2-8).

Each driver reproduces one figure's experiment on simulated chips and
returns a structured result; benchmarks render these as the paper's series
and assert the qualitative findings (Observations 1-4).  Default parameters
are sized for quick runs; the benchmark suite passes larger populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import rng as rng_mod
from ..conditions import Conditions
from ..core.bruteforce import BruteForceProfiler
from ..core.device import normalize_cells
from ..dram.chip import SimulatedDRAMChip
from ..dram.geometry import ChipGeometry
from ..dram.vendor import VENDORS, VENDOR_B, VendorModel
from ..errors import ConfigurationError
from ..patterns import CHECKERBOARD, STANDARD_PATTERNS, DataPattern
from .fitting import LognormalFit, NormalCdfFit, PowerLawFit, fit_lognormal, fit_normal_cdf, fit_power_law

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 86400.0

#: Default simulated chip capacity for characterization runs.
DEFAULT_CHAR_GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)


def _make_chip(
    vendor: VendorModel,
    geometry: ChipGeometry,
    seed: int,
    chip_id: int,
    max_trefi_s: float,
    max_temperature_c: float = 45.0,
    temperature_c: float = 45.0,
) -> SimulatedDRAMChip:
    return SimulatedDRAMChip(
        vendor=vendor,
        geometry=geometry,
        seed=seed,
        chip_id=chip_id,
        max_trefi_s=max_trefi_s,
        max_temperature_c=max_temperature_c,
        temperature_c=temperature_c,
    )


# ======================================================================
# Figure 2: aggregate retention failure rates vs refresh interval
# ======================================================================
@dataclass(frozen=True)
class Fig2Row:
    """BER split of one vendor at one refresh interval (Figure 2)."""

    vendor: str
    trefi_s: float
    ber_total: float
    ber_unique: float
    ber_repeat: float
    ber_nonrepeat: float

    @property
    def repeat_fraction(self) -> float:
        """Share of this interval's failures already seen at lower intervals."""
        if self.ber_total == 0.0:
            return 0.0
        return self.ber_repeat / self.ber_total

    @property
    def reobserved_fraction(self) -> float:
        """Of the cells seen at lower intervals, the share failing again here.

        This is Observation 1's quantity: cells that fail at a given
        interval are likely to fail again at a higher one, so this should be
        close to 1 (the non-repeat slice stays thin).
        """
        seen_before = self.ber_repeat + self.ber_nonrepeat
        if seen_before == 0.0:
            return 1.0
        return self.ber_repeat / seen_before


def fig2_retention_failure_rates(
    intervals_s: Sequence[float] = (0.064, 0.128, 0.256, 0.512, 1.024, 2.048),
    chips_per_vendor: int = 1,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    iterations: int = 1,
    seed: int = rng_mod.DEFAULT_SEED,
) -> List[Fig2Row]:
    """Sweep refresh intervals and split failures into unique/repeat/non-repeat.

    For each interval, failures are compared against the union of failures
    observed at all lower intervals, exactly as the paper's Figure 2 does.
    """
    if list(intervals_s) != sorted(intervals_s):
        raise ConfigurationError("intervals must be ascending")
    profiler = BruteForceProfiler(iterations=iterations)
    accum: Dict[Tuple[str, float], List[Tuple[float, float, float, float]]] = {}
    for vendor in VENDORS.values():
        for chip_index in range(chips_per_vendor):
            chip = _make_chip(
                vendor, geometry, seed, chip_index, max_trefi_s=max(intervals_s) * 1.05
            )
            lower_union: set = set()
            capacity = chip.capacity_bits
            for trefi in intervals_s:
                profile = profiler.run(chip, Conditions(trefi=trefi, temperature=45.0))
                failing = set(profile.failing)
                unique = failing - lower_union
                repeat = failing & lower_union
                nonrepeat = lower_union - failing
                accum.setdefault((vendor.name, trefi), []).append(
                    (
                        len(failing) / capacity,
                        len(unique) / capacity,
                        len(repeat) / capacity,
                        len(nonrepeat) / capacity,
                    )
                )
                lower_union |= failing
    rows: List[Fig2Row] = []
    for (vendor_name, trefi), samples in sorted(accum.items()):
        arr = np.asarray(samples)
        rows.append(
            Fig2Row(
                vendor=vendor_name,
                trefi_s=trefi,
                ber_total=float(arr[:, 0].mean()),
                ber_unique=float(arr[:, 1].mean()),
                ber_repeat=float(arr[:, 2].mean()),
                ber_nonrepeat=float(arr[:, 3].mean()),
            )
        )
    return rows


# ======================================================================
# Figure 3: failure discovery over continuous profiling (VRT)
# ======================================================================
@dataclass(frozen=True)
class Fig3IterationPoint:
    iteration: int
    time_days: float
    unique_new: int
    repeat: int
    cumulative: int


@dataclass(frozen=True)
class Fig3Result:
    points: Tuple[Fig3IterationPoint, ...]
    steady_state_rate_per_hour: float
    trefi_s: float
    capacity_bits: int

    @property
    def total_discovered(self) -> int:
        return self.points[-1].cumulative if self.points else 0

    def steady_state_onset_days(self, rate_tolerance: float = 2.0) -> float:
        """When discovery becomes purely accumulation-driven.

        The paper observes "it takes about 10 hours to find the base set of
        failures" before brute force enters steady state.  We estimate the
        onset as the earliest time from which every subsequent
        quarter-window's discovery rate stays within ``rate_tolerance`` of
        the final steady-state rate.
        """
        if len(self.points) < 8 or self.steady_state_rate_per_hour <= 0.0:
            return 0.0
        # Prepend the virtual origin (nothing discovered at t = 0) so the
        # initial base-set burst is part of the first window.
        times = [0.0] + [p.time_days for p in self.points]
        counts = [0] + [p.cumulative for p in self.points]
        quarter = max(len(times) // 8, 1)
        for start in range(0, len(times) - quarter, quarter):
            ok = True
            for begin in range(start, len(times) - quarter, quarter):
                end = begin + quarter
                hours = (times[end] - times[begin]) * 24.0
                if hours <= 0.0:
                    continue
                rate = (counts[end] - counts[begin]) / hours
                if rate > self.steady_state_rate_per_hour * rate_tolerance:
                    ok = False
                    break
            if ok:
                return times[start]
        return times[-1]


def fig3_discovery_timeline(
    trefi_s: float = 2.048,
    iterations: int = 800,
    span_days: float = 6.0,
    vendor: VendorModel = VENDOR_B,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    seed: int = rng_mod.DEFAULT_SEED,
    steady_state_fraction: float = 0.5,
) -> Fig3Result:
    """Brute-force profiling over days at one interval (Figure 3).

    Iterations are spread across ``span_days`` with idle gaps (as in the
    paper, where 800 iterations spanned six days of testing); the steady-
    state rate is estimated from the last ``steady_state_fraction`` of the
    run, where new discoveries are VRT-driven.
    """
    if iterations < 4:
        raise ConfigurationError("need at least 4 iterations")
    chip = _make_chip(vendor, geometry, seed, 0, max_trefi_s=trefi_s * 1.05)
    active_per_iteration = len(STANDARD_PATTERNS) * (trefi_s + 2.0 * chip.pattern_io_seconds)
    idle = max(span_days * _SECONDS_PER_DAY / iterations - active_per_iteration, 0.0)
    profiler = BruteForceProfiler(iterations=iterations, idle_between_iterations_s=idle)
    profile = profiler.run(chip, Conditions(trefi=trefi_s, temperature=45.0))

    points: List[Fig3IterationPoint] = []
    cumulative = 0
    by_iteration: Dict[int, List] = {}
    for record in profile.records:
        by_iteration.setdefault(record.iteration, []).append(record)
    for iteration in sorted(by_iteration):
        new = sum(r.new_count for r in by_iteration[iteration])
        observed = sum(r.observed_count for r in by_iteration[iteration])
        cumulative += new
        points.append(
            Fig3IterationPoint(
                iteration=iteration,
                time_days=by_iteration[iteration][-1].clock_time / _SECONDS_PER_DAY,
                unique_new=new,
                repeat=max(observed - new, 0),
                cumulative=cumulative,
            )
        )
    cutoff = int(len(points) * (1.0 - steady_state_fraction))
    tail = points[cutoff:]
    if len(tail) >= 2 and tail[-1].time_days > tail[0].time_days:
        new_in_tail = tail[-1].cumulative - tail[0].cumulative
        hours = (tail[-1].time_days - tail[0].time_days) * 24.0
        rate = new_in_tail / hours
    else:
        rate = 0.0
    return Fig3Result(
        points=tuple(points),
        steady_state_rate_per_hour=rate,
        trefi_s=trefi_s,
        capacity_bits=chip.capacity_bits,
    )


# ======================================================================
# Figure 4: steady-state accumulation rate vs refresh interval
# ======================================================================
@dataclass(frozen=True)
class Fig4Row:
    vendor: str
    trefi_s: float
    measured_rate_per_hour: float
    analytic_rate_per_hour: float


@dataclass(frozen=True)
class Fig4Result:
    rows: Tuple[Fig4Row, ...]
    fits: Dict[str, PowerLawFit]


def fig4_accumulation_rates(
    intervals_s: Sequence[float] = (1.024, 1.536, 2.048, 2.560),
    hours_per_interval: float = 24.0,
    chips_per_vendor: int = 1,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    base_iterations: int = 8,
    seed: int = rng_mod.DEFAULT_SEED,
) -> Fig4Result:
    """Measure new-failure accumulation rates and fit ``A(t) = a * t^b``.

    At each interval the chip is first profiled thoroughly
    (``base_iterations`` rounds) to exhaust the static failing set --
    mirroring the paper's observation that ~10 hours of testing are needed
    before discovery becomes purely VRT-driven -- then probed hourly; newly
    failing cells per hour give the steady-state rate (Figure 4).
    """
    probe = BruteForceProfiler(iterations=1)
    base = BruteForceProfiler(iterations=base_iterations)
    rows: List[Fig4Row] = []
    by_vendor: Dict[str, List[Tuple[float, float]]] = {}
    for vendor in VENDORS.values():
        for trefi in intervals_s:
            measured_rates: List[float] = []
            for chip_index in range(chips_per_vendor):
                chip = _make_chip(
                    vendor,
                    geometry,
                    seed,
                    1000 + chip_index,
                    max_trefi_s=max(intervals_s) * 1.05,
                )
                conditions = Conditions(trefi=trefi, temperature=45.0)
                seen = set(base.run(chip, conditions).failing)
                new_count = 0
                probes = max(int(hours_per_interval), 1)
                for _ in range(probes):
                    chip.wait(_SECONDS_PER_HOUR)
                    found = set(probe.run(chip, conditions).failing)
                    new_count += len(found - seen)
                    seen |= found
                measured_rates.append(new_count / probes)
            measured = float(np.mean(measured_rates))
            analytic = vendor.vrt_arrival_rate_per_hour(
                trefi, geometry.capacity_gigabits, 45.0
            )
            rows.append(
                Fig4Row(
                    vendor=vendor.name,
                    trefi_s=trefi,
                    measured_rate_per_hour=measured,
                    analytic_rate_per_hour=analytic,
                )
            )
            if measured > 0.0:
                by_vendor.setdefault(vendor.name, []).append((trefi, measured))
    fits: Dict[str, PowerLawFit] = {}
    for vendor_name, pairs in by_vendor.items():
        if len(pairs) >= 2:
            xs, ys = zip(*pairs)
            fits[vendor_name] = fit_power_law(xs, ys)
    return Fig4Result(rows=tuple(rows), fits=fits)


# ======================================================================
# Figure 5: data pattern dependence of discovery
# ======================================================================
@dataclass(frozen=True)
class Fig5Result:
    pattern_keys: Tuple[str, ...]
    #: coverage_by_pattern[key][i] = fraction of all failures ever observed
    #: that pattern had personally detected by the end of iteration i.
    coverage_by_pattern: Dict[str, Tuple[float, ...]]
    total_failures: int
    iterations: int

    def final_coverage(self, key: str) -> float:
        series = self.coverage_by_pattern[key]
        return series[-1] if series else 0.0

    def best_pattern(self) -> str:
        return max(self.pattern_keys, key=self.final_coverage)


def fig5_dpd_coverage(
    trefi_s: float = 2.048,
    iterations: int = 128,
    vendor: VendorModel = VENDOR_B,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
    seed: int = rng_mod.DEFAULT_SEED,
) -> Fig5Result:
    """Track each data pattern's personal coverage over iterations.

    Unlike the profiler's global-new accounting, a failure is credited to
    *every* pattern that observes it, yielding the per-pattern coverage
    fractions of Figure 5.
    """
    chip = _make_chip(vendor, geometry, seed, 0, max_trefi_s=trefi_s * 1.05)
    per_pattern: Dict[str, set] = {p.key: set() for p in patterns}
    total: set = set()
    history: Dict[str, List[int]] = {p.key: [] for p in patterns}
    total_history: List[int] = []
    for _ in range(iterations):
        for pattern in patterns:
            chip.write_pattern(pattern)
            chip.disable_refresh()
            chip.wait(trefi_s)
            chip.enable_refresh()
            observed = normalize_cells(chip.read_errors())
            per_pattern[pattern.key] |= observed
            total |= observed
        for pattern in patterns:
            history[pattern.key].append(len(per_pattern[pattern.key]))
        total_history.append(len(total))
    grand_total = len(total)
    coverage = {
        key: tuple(count / grand_total if grand_total else 0.0 for count in series)
        for key, series in history.items()
    }
    return Fig5Result(
        pattern_keys=tuple(p.key for p in patterns),
        coverage_by_pattern=coverage,
        total_failures=grand_total,
        iterations=iterations,
    )


# ======================================================================
# Figure 6: per-cell failure CDFs and their sigma distribution
# ======================================================================
@dataclass(frozen=True)
class Fig6Result:
    mus_s: np.ndarray
    sigmas_s: np.ndarray
    sigma_fit: Optional[LognormalFit]
    fraction_sigma_below_200ms: float
    cells_fitted: int
    cells_excluded_vrt: int


def fig6_cell_failure_cdfs(
    intervals_s: Optional[Sequence[float]] = None,
    reads_per_interval: int = 16,
    vendor: VendorModel = VENDOR_B,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    temperature_c: float = 40.0,
    pattern: DataPattern = CHECKERBOARD,
    seed: int = rng_mod.DEFAULT_SEED,
) -> Fig6Result:
    """Empirically fit each weak cell's normal failure CDF (Figure 6).

    Reads each interval ``reads_per_interval`` times (the paper uses 16) and
    probit-fits a per-cell (mu, sigma).  VRT-flagged cells are excluded, as
    in the paper's footnote 1.
    """
    if intervals_s is None:
        intervals_s = tuple(np.geomspace(0.064, 2.4, 18))
    chip = _make_chip(
        vendor,
        geometry,
        seed,
        0,
        max_trefi_s=max(intervals_s) * 1.05,
        max_temperature_c=max(temperature_c, 45.0),
        temperature_c=temperature_c,
    )
    population = chip.population
    index_of = {int(flat): i for i, flat in enumerate(population.indices)}
    counts = np.zeros((len(population), len(intervals_s)), dtype=np.int32)
    for col, trefi in enumerate(intervals_s):
        for _ in range(reads_per_interval):
            chip.write_pattern(pattern)
            chip.disable_refresh()
            chip.wait(trefi)
            chip.enable_refresh()
            for flat in chip.read_errors():
                row = index_of.get(int(flat))
                if row is not None:
                    counts[row, col] += 1
    fractions = counts / reads_per_interval
    mus: List[float] = []
    sigmas: List[float] = []
    excluded = 0
    for i in range(len(population)):
        if population.vrt_flag[i]:
            if fractions[i].max() > 0.0:
                excluded += 1
            continue
        if fractions[i].max() == 0.0:
            continue  # never failed in the tested range
        # Require several informative points so the probit slope (and hence
        # sigma) is well-determined; discard fits whose spread rivals the
        # mean, which signals a cell only glimpsed at the edge of the grid.
        fit = fit_normal_cdf(intervals_s, fractions[i], min_points=3)
        if fit is not None and 0.0 < fit.sigma < fit.mu / 3.0:
            mus.append(fit.mu)
            sigmas.append(fit.sigma)
    mus_arr = np.asarray(mus)
    sigmas_arr = np.asarray(sigmas)
    sigma_fit = fit_lognormal(sigmas_arr) if len(sigmas_arr) >= 2 else None
    below = float(np.mean(sigmas_arr < 0.2)) if len(sigmas_arr) else 0.0
    return Fig6Result(
        mus_s=mus_arr,
        sigmas_s=sigmas_arr,
        sigma_fit=sigma_fit,
        fraction_sigma_below_200ms=below,
        cells_fitted=len(mus_arr),
        cells_excluded_vrt=excluded,
    )


# ======================================================================
# Observation 4 support: the weak/strong classification band
# ======================================================================
@dataclass(frozen=True)
class ClassificationBand:
    """Cells split by failure probability at one operating point.

    The paper's contribution bullet: DRAM cells *cannot* be cleanly
    classified as "weak" or "strong" -- at any target interval a band of
    cells fails only probabilistically.  Reach profiling works because the
    same cells become reliable failures at the reach conditions.
    """

    conditions: Conditions
    reliable_weak: int    # P(fail) >= p_hi: found by any single test
    marginal: int         # p_lo < P(fail) < p_hi: found only sometimes
    reliable_strong: int  # P(fail) <= p_lo among the instantiated tail

    @property
    def marginal_fraction_of_failing(self) -> float:
        failing = self.reliable_weak + self.marginal
        if failing == 0:
            return 0.0
        return self.marginal / failing


def classification_band(
    chip: SimulatedDRAMChip,
    conditions: Conditions,
    p_lo: float = 0.05,
    p_hi: float = 0.95,
) -> ClassificationBand:
    """Count reliably-weak / marginal / reliably-strong cells at a point."""
    if not (0.0 < p_lo < p_hi < 1.0):
        raise ConfigurationError("need 0 < p_lo < p_hi < 1")
    p = chip.population.worst_case_probabilities(conditions.trefi, conditions.temperature)
    weak = int((p >= p_hi).sum())
    marginal = int(((p > p_lo) & (p < p_hi)).sum())
    strong = int((p <= p_lo).sum())
    return ClassificationBand(
        conditions=conditions,
        reliable_weak=weak,
        marginal=marginal,
        reliable_strong=strong,
    )


def marginal_band_conversion(
    chip: SimulatedDRAMChip,
    target: Conditions,
    reach_delta_trefi_s: float = 0.250,
    p_lo: float = 0.05,
    p_hi: float = 0.95,
    converted_at: float = 0.5,
) -> float:
    """Fraction of the target's marginal cells made findable at reach.

    This is the mechanism behind Observation 4 / Corollary 4: marginal cells
    are exactly the ones brute force needs many iterations for; reach
    conditions lift their per-read failure probability to at least
    ``converted_at``, at which point a handful of profiling passes finds
    them with near certainty (P(miss) = (1 - p)^passes).
    """
    if not (0.0 < converted_at <= 1.0):
        raise ConfigurationError("converted_at must lie in (0, 1]")
    p_target = chip.population.worst_case_probabilities(target.trefi, target.temperature)
    marginal_mask = (p_target > p_lo) & (p_target < p_hi)
    if not marginal_mask.any():
        return 1.0
    p_reach = chip.population.worst_case_probabilities(
        target.trefi + reach_delta_trefi_s, target.temperature
    )
    return float((p_reach[marginal_mask] >= converted_at).mean())


# ======================================================================
# Figure 7: (mu, sigma) distributions across temperature
# ======================================================================
@dataclass(frozen=True)
class Fig7Row:
    temperature_c: float
    mu_median_s: float
    sigma_median_s: float
    mu_mean_s: float
    sigma_mean_s: float


def fig7_parameter_distributions(
    temperatures_c: Sequence[float] = (40.0, 45.0, 50.0, 55.0),
    vendor: VendorModel = VENDOR_B,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    max_mu_s: float = 2.6,
    seed: int = rng_mod.DEFAULT_SEED,
) -> List[Fig7Row]:
    """Population (mu, sigma) statistics at each temperature (Figure 7).

    Uses the chip's aggregated per-cell fit parameters (the simulator-side
    equivalent of the paper's normal-fit aggregation), restricted to cells
    whose mean falls inside the tested interval range.
    """
    chip = _make_chip(
        vendor,
        geometry,
        seed,
        0,
        max_trefi_s=max_mu_s,
        max_temperature_c=max(temperatures_c),
    )
    # Fix the analyzed cell set at the coolest temperature so the medians
    # track the same physical cells across the sweep (otherwise hotter
    # operation pulls new, stronger cells into the window and masks the
    # leftward shift the figure demonstrates).
    mu_cool, _ = chip.population.scaled_parameters(min(temperatures_c))
    mask = mu_cool <= max_mu_s
    rows: List[Fig7Row] = []
    for temp in temperatures_c:
        mu, sigma = chip.population.scaled_parameters(temp)
        rows.append(
            Fig7Row(
                temperature_c=temp,
                mu_median_s=float(np.median(mu[mask])),
                sigma_median_s=float(np.median(sigma[mask])),
                mu_mean_s=float(np.mean(mu[mask])),
                sigma_mean_s=float(np.mean(sigma[mask])),
            )
        )
    return rows


# ======================================================================
# Figure 8: combined failure probability over temperature and interval
# ======================================================================
@dataclass(frozen=True)
class Fig8Result:
    temperatures_c: Tuple[float, ...]
    intervals_s: Tuple[float, ...]
    #: mean_probability[i][j]: mean per-cell failure probability at
    #: temperature i, interval j, over the chip's weak-cell population.
    mean_probability: np.ndarray
    std_probability: np.ndarray

    def interval_for_probability(self, temperature_c: float, target: float) -> float:
        """Interpolated interval at which the combined mean reaches target."""
        i = self.temperatures_c.index(temperature_c)
        series = self.mean_probability[i]
        return float(np.interp(target, series, self.intervals_s))


def fig8_combined_distribution(
    temperatures_c: Sequence[float] = (40.0, 45.0, 50.0, 55.0),
    intervals_s: Optional[Sequence[float]] = None,
    vendor: VendorModel = VENDOR_B,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    seed: int = rng_mod.DEFAULT_SEED,
) -> Fig8Result:
    """Combined per-cell failure probability surface (Figure 8)."""
    from scipy.special import ndtr

    if intervals_s is None:
        intervals_s = tuple(np.linspace(0.2, 2.4, 23))
    chip = _make_chip(
        vendor,
        geometry,
        seed,
        0,
        max_trefi_s=max(intervals_s) * 1.05,
        max_temperature_c=max(temperatures_c),
    )
    # Combine the failure CDFs of cells that fail somewhere in the tested
    # window at the reference temperature (the figure's "failing cells").
    mu_ref, _ = chip.population.scaled_parameters(45.0)
    window = (mu_ref >= min(intervals_s)) & (mu_ref <= max(intervals_s))
    mean = np.zeros((len(temperatures_c), len(intervals_s)))
    std = np.zeros_like(mean)
    for i, temp in enumerate(temperatures_c):
        mu, sigma = chip.population.scaled_parameters(temp)
        mu, sigma = mu[window], sigma[window]
        for j, trefi in enumerate(intervals_s):
            p = ndtr((trefi - mu) / sigma)
            mean[i, j] = float(p.mean())
            std[i, j] = float(p.std())
    return Fig8Result(
        temperatures_c=tuple(temperatures_c),
        intervals_s=tuple(intervals_s),
        mean_probability=mean,
        std_probability=std,
    )
