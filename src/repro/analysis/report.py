"""Plain-text reporting of experiment results.

Benchmarks regenerate the paper's tables and figure series as text:
``ascii_table`` renders aligned tables, ``paper_vs_measured`` renders the
comparison rows EXPERIMENTS.md is built from, and ``to_csv`` dumps raw
series for external plotting.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence, Union

from ..errors import ConfigurationError

Cell = Union[str, float, int, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """Render an aligned monospace table."""
    formatted: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ConfigurationError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(header_line + "\n")
    out.write("-" * len(header_line) + "\n")
    for row in formatted:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def paper_vs_measured(
    label: str,
    paper_value: str,
    measured_value: str,
    verdict: Optional[str] = None,
) -> str:
    """One comparison row: what the paper reports vs what we measured."""
    row = f"  {label:<48} paper: {paper_value:<24} measured: {measured_value}"
    if verdict:
        row += f"  [{verdict}]"
    return row


def format_duration(seconds: Optional[float]) -> str:
    """Render a duration as a compact human-readable string.

    ``None`` and non-finite values render as ``"?"`` (an ETA that cannot be
    estimated yet); everything else as ``90s`` / ``4m30s`` / ``2h05m``.
    """
    if seconds is None or not (seconds == seconds) or seconds in (float("inf"), float("-inf")):
        return "?"
    seconds = max(0.0, float(seconds))
    if seconds < 120.0:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 120:
        return f"{minutes:d}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours:d}h{minutes:02d}m"


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Dump a result series as CSV text."""
    out = io.StringIO()
    out.write(",".join(headers) + "\n")
    for row in rows:
        out.write(",".join(_format_cell(c) for c in row) + "\n")
    return out.getvalue()
