"""Statistical fits used throughout the characterization analyses.

* power-law fits ``y = a * x^b`` (Figure 4's accumulation-rate curves),
* per-cell normal failure-CDF fits via probit regression (Figure 6a),
* lognormal fits of positive samples (Figure 6b's sigma histogram).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.special import ndtri

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PowerLawFit:
    """``y = a * x^b`` fitted in log-log space."""

    a: float
    b: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.a * x**self.b

    def __str__(self) -> str:
        return f"y = {self.a:.4g} * x^{self.b:.3f} (R2={self.r_squared:.3f})"


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``y = a*x^b`` on positive data (log-log OLS)."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if len(x_arr) != len(y_arr) or len(x_arr) < 2:
        raise ConfigurationError("need at least two (x, y) pairs of equal length")
    if np.any(x_arr <= 0.0) or np.any(y_arr <= 0.0):
        raise ConfigurationError("power-law fits require strictly positive data")
    lx, ly = np.log(x_arr), np.log(y_arr)
    b, log_a = np.polyfit(lx, ly, 1)
    residuals = ly - (log_a + b * lx)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    return PowerLawFit(a=float(np.exp(log_a)), b=float(b), r_squared=r2)


@dataclass(frozen=True)
class NormalCdfFit:
    """Per-cell failure CDF: P(fail | t) = Phi((t - mu) / sigma)."""

    mu: float
    sigma: float

    def probability(self, t: float) -> float:
        from scipy.special import ndtr

        return float(ndtr((t - self.mu) / self.sigma))


def fit_normal_cdf(
    intervals: Sequence[float],
    failure_fractions: Sequence[float],
    min_points: int = 2,
) -> Optional[NormalCdfFit]:
    """Probit-regress a cell's observed failure fractions onto intervals.

    Points at exactly 0 or 1 carry no probit information and are clipped;
    returns ``None`` when fewer than ``min_points`` informative points remain
    (a cell that jumped straight from never-fails to always-fails between
    samples).  Raising ``min_points`` trades fitted-cell count for fit
    quality.
    """
    if min_points < 2:
        raise ConfigurationError(f"min_points must be at least 2, got {min_points!r}")
    t = np.asarray(intervals, dtype=float)
    p = np.asarray(failure_fractions, dtype=float)
    if len(t) != len(p):
        raise ConfigurationError("intervals and fractions must have equal length")
    informative = (p > 0.0) & (p < 1.0)
    if informative.sum() < min_points:
        return None
    z = ndtri(p[informative])
    # z = (t - mu) / sigma  ->  z = t/sigma - mu/sigma: linear in t.
    slope, intercept = np.polyfit(t[informative], z, 1)
    if slope <= 0.0:
        return None
    sigma = 1.0 / slope
    mu = -intercept * sigma
    return NormalCdfFit(mu=float(mu), sigma=float(sigma))


@dataclass(frozen=True)
class LognormalFit:
    """Lognormal parameters of a positive sample."""

    ln_mean: float
    ln_sigma: float
    n_samples: int

    @property
    def median(self) -> float:
        return math.exp(self.ln_mean)

    def ks_distance(self, samples: Sequence[float]) -> float:
        """Kolmogorov-Smirnov distance of samples against the fit."""
        from scipy.stats import kstest

        data = np.log(np.asarray(samples, dtype=float))
        return float(kstest(data, "norm", args=(self.ln_mean, self.ln_sigma)).statistic)


def fit_lognormal(samples: Sequence[float]) -> LognormalFit:
    """Moment-match a lognormal to strictly positive samples."""
    data = np.asarray(samples, dtype=float)
    if len(data) < 2:
        raise ConfigurationError("need at least two samples")
    if np.any(data <= 0.0):
        raise ConfigurationError("lognormal fits require strictly positive samples")
    logs = np.log(data)
    return LognormalFit(
        ln_mean=float(logs.mean()),
        ln_sigma=float(logs.std(ddof=1)),
        n_samples=len(data),
    )
