"""CSV export of the reproduced figure/table series.

For plotting outside Python, ``export_all`` regenerates the cheap analytic
series (Table 1, Figures 7, 8, 11, 12, and a reduced Figure 13) and writes
one CSV per experiment.  The measurement-heavy characterization figures
(2-6, 9, 10) are produced by their benchmarks, which save human-readable
reports under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from ..errors import ConfigurationError
from ..sysperf.overhead import ProfilerKind
from .characterization import fig7_parameter_distributions, fig8_combined_distribution
from .experiments import (
    fig11_profiling_time,
    fig12_profiling_power,
    fig13_end_to_end,
    table1_tolerable_rber,
)
from .report import to_csv


def export_all(outdir, n_mixes: int = 6) -> List[Path]:
    """Write the analytic experiment series as CSVs; returns written paths."""
    if n_mixes <= 0:
        raise ConfigurationError("n_mixes must be positive")
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def write(name: str, headers, rows) -> None:
        path = out / f"{name}.csv"
        path.write_text(to_csv(headers, rows))
        written.append(path)

    # Table 1 ------------------------------------------------------------
    sizes = ("512MB", "1GB", "2GB", "4GB", "8GB")
    write(
        "table1",
        ["ecc", "tolerable_rber", *sizes],
        [
            [r.ecc_name, r.tolerable_rber, *[r.tolerable_bit_errors[s] for s in sizes]]
            for r in table1_tolerable_rber()
        ],
    )

    # Figure 7 -----------------------------------------------------------
    write(
        "fig7",
        ["temperature_c", "mu_median_s", "sigma_median_s", "mu_mean_s", "sigma_mean_s"],
        [
            [r.temperature_c, r.mu_median_s, r.sigma_median_s, r.mu_mean_s, r.sigma_mean_s]
            for r in fig7_parameter_distributions()
        ],
    )

    # Figure 8 -----------------------------------------------------------
    fig8 = fig8_combined_distribution()
    rows8 = []
    for i, temperature in enumerate(fig8.temperatures_c):
        for j, interval in enumerate(fig8.intervals_s):
            rows8.append(
                [temperature, interval, fig8.mean_probability[i, j], fig8.std_probability[i, j]]
            )
    write("fig8", ["temperature_c", "trefi_s", "mean_probability", "std_probability"], rows8)

    # Figures 11 & 12 ------------------------------------------------------
    write(
        "fig11",
        ["interval_hours", "chip_gbit", "brute_fraction", "reaper_fraction"],
        [
            [r.profiling_interval_hours, r.chip_density_gigabits, r.brute_fraction, r.reaper_fraction]
            for r in fig11_profiling_time()
        ],
    )
    write(
        "fig12",
        ["interval_hours", "chip_gbit", "brute_power_mw", "reaper_power_mw"],
        [
            [r.profiling_interval_hours, r.chip_density_gigabits, r.brute_power_mw, r.reaper_power_mw]
            for r in fig12_profiling_power()
        ],
    )

    # Figure 13 (reduced mix count for speed) ------------------------------
    summaries = fig13_end_to_end(n_mixes=n_mixes)
    write(
        "fig13",
        ["trefi_s", "profiler", "mean_improvement", "max_improvement",
         "mean_power_reduction", "max_power_reduction"],
        [
            [
                s.trefi_s if s.trefi_s is not None else "no-refresh",
                s.profiler.value,
                s.mean_improvement,
                s.max_improvement,
                s.mean_power_reduction,
                s.max_power_reduction,
            ]
            for s in summaries
        ],
    )
    return written
