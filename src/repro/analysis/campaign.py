"""Population-scale characterization campaigns.

The paper's credibility rests on characterizing 368 chips across three
vendors.  :class:`CharacterizationCampaign` packages that workflow at any
population size: decompose the population into independent per-chip work
units, execute them through the :mod:`repro.runner` engine (serially by
default; across a process pool with ``workers``), and aggregate per-vendor
statistics -- the measured BER curves, the empirical Eq-1 temperature
coefficients, and the spread across chips -- into a single summary report.

Passing ``run_dir`` makes the run durable: completed chips stream into a
JSONL result store, and relaunching with ``resume=True`` executes only the
chips that are missing.  Serial, parallel, and resumed runs of the same
configuration produce identical summaries -- every chip's measurement is a
pure function of ``(seed, chip_id)`` and aggregation erases completion
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import rng as rng_mod
from ..dram.geometry import ChipGeometry
from ..dram.shm import (
    SharedPopulationStore,
    build_population_samples,
    chip_sample_spec,
    cleanup_stale_segment,
    remove_sidecar,
    write_sidecar,
)
from ..dram.vendor import VENDORS, vendor_by_name
from ..errors import ConfigurationError
from ..runner import (
    Backend,
    ProgressCallback,
    RunnerEngine,
    aggregate_chip_results,
    auto_condition_tiles,
    build_chip_units,
    campaign_fingerprint,
    fleet_dispatch,
    fleet_tile_dispatch,
    measure_chip,
)
from ..runner.campaign import TREFI_HEADROOM
from ..runner.executors import ProcessPoolBackend, backend_from_spec
from .characterization import DEFAULT_CHAR_GEOMETRY
from .report import ascii_table


@dataclass(frozen=True)
class VendorStatistics:
    """Aggregated measurements for one vendor's chip population."""

    vendor: str
    n_chips: int
    #: trefi_s -> (mean BER, std BER across chips)
    ber_by_interval: Dict[float, Tuple[float, float]]
    #: Empirical Eq-1 coefficient from the multi-temperature measurement.
    measured_temp_coefficient: Optional[float]
    model_temp_coefficient: float

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form; float map keys become their ``repr`` strings
        so the round trip through :meth:`from_json_dict` is lossless."""
        return {
            "vendor": self.vendor,
            "n_chips": self.n_chips,
            "ber_by_interval": {
                repr(float(trefi)): [mean, std]
                for trefi, (mean, std) in sorted(self.ber_by_interval.items())
            },
            "measured_temp_coefficient": self.measured_temp_coefficient,
            "model_temp_coefficient": self.model_temp_coefficient,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "VendorStatistics":
        measured = data.get("measured_temp_coefficient")
        return cls(
            vendor=str(data["vendor"]),
            n_chips=int(data["n_chips"]),  # type: ignore[arg-type]
            ber_by_interval={
                float(trefi): (float(pair[0]), float(pair[1]))
                for trefi, pair in data["ber_by_interval"].items()  # type: ignore[union-attr]
            },
            measured_temp_coefficient=(
                None if measured is None else float(measured)  # type: ignore[arg-type]
            ),
            model_temp_coefficient=float(data["model_temp_coefficient"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class CampaignSummary:
    """Everything a campaign measured."""

    n_chips: int
    intervals_s: Tuple[float, ...]
    temperatures_c: Tuple[float, ...]
    vendors: Dict[str, VendorStatistics]
    #: Unit ids whose chips could not be measured (retries exhausted).
    failed_units: Tuple[str, ...] = field(default=())

    def to_text(self) -> str:
        rows: List[List] = []
        for stats in self.vendors.values():
            for trefi, (mean, std) in sorted(stats.ber_by_interval.items()):
                rows.append([stats.vendor, trefi * 1e3, mean, std])
        table = ascii_table(
            ["vendor", "tREFI (ms)", "BER mean", "BER std"],
            rows,
            title=f"Campaign over {self.n_chips} chips",
        )
        lines = [table, "Temperature coefficients (Eq 1):"]
        for stats in self.vendors.values():
            measured = (
                f"{stats.measured_temp_coefficient:.3f}"
                if stats.measured_temp_coefficient is not None
                else "n/a"
            )
            lines.append(
                f"  vendor {stats.vendor}: measured k={measured} "
                f"(model k={stats.model_temp_coefficient:.2f})"
            )
        if self.failed_units:
            lines.append(
                f"Unmeasured chips ({len(self.failed_units)}): "
                + ", ".join(self.failed_units)
            )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        """Wire/ledger form of the summary: plain JSON, fully ordered.

        ``json.dumps(summary.to_json_dict(), sort_keys=True)`` is the
        service's result payload; because the dict is built from sorted
        components, two equal summaries serialize to identical bytes --
        the property the service's byte-identity tests pin.
        """
        return {
            "n_chips": self.n_chips,
            "intervals_s": [float(t) for t in self.intervals_s],
            "temperatures_c": [float(t) for t in self.temperatures_c],
            "vendors": {
                name: stats.to_json_dict()
                for name, stats in sorted(self.vendors.items())
            },
            "failed_units": list(self.failed_units),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "CampaignSummary":
        return cls(
            n_chips=int(data["n_chips"]),  # type: ignore[arg-type]
            intervals_s=tuple(float(t) for t in data["intervals_s"]),  # type: ignore[union-attr]
            temperatures_c=tuple(float(t) for t in data["temperatures_c"]),  # type: ignore[union-attr]
            vendors={
                str(name): VendorStatistics.from_json_dict(stats)
                for name, stats in data["vendors"].items()  # type: ignore[union-attr]
            },
            failed_units=tuple(str(u) for u in data["failed_units"]),  # type: ignore[union-attr]
        )


class CharacterizationCampaign:
    """Runs a multi-chip, multi-vendor characterization campaign.

    Parameters
    ----------
    chips_per_vendor:
        Population size per vendor (the paper used ~123 per vendor; any
        size works, statistics tighten with more chips).
    geometry:
        Simulated chip capacity.
    iterations:
        Brute-force iterations per measurement point.
    fast_path:
        Failure-evaluation mode for the measurement workers (``None`` =
        process default).  Byte-identical either way -- summaries from the
        two modes compare equal, which tests assert -- so this is a
        benchmarking/debugging knob, not a results knob, and it is
        excluded from the campaign fingerprint.
    """

    def __init__(
        self,
        chips_per_vendor: int = 2,
        geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
        iterations: int = 2,
        seed: int = rng_mod.DEFAULT_SEED,
        fast_path: Optional[bool] = None,
    ) -> None:
        if chips_per_vendor <= 0:
            raise ConfigurationError("chips_per_vendor must be positive")
        self.chips_per_vendor = chips_per_vendor
        self.geometry = geometry
        self.iterations = iterations
        self.seed = seed
        self.fast_path = fast_path

    def run(
        self,
        intervals_s: Sequence[float] = (0.512, 1.024, 2.048),
        temperatures_c: Sequence[float] = (45.0, 55.0),
        *,
        backend: Union[str, Backend, None] = "serial",
        workers: Optional[int] = None,
        run_dir: Optional[str] = None,
        resume: bool = False,
        max_retries: int = 1,
        progress: Optional[ProgressCallback] = None,
        chips_per_unit: Optional[int] = None,
        shared_population: Optional[bool] = None,
        megakernel: bool = True,
        condition_tiles: Optional[int] = None,
        tile_progress: Optional[Callable[[Mapping[str, Any]], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        observability: Optional[object] = None,
    ) -> CampaignSummary:
        """Measure BER curves and temperature scaling across the population.

        The first temperature hosts the interval sweep; the remaining
        temperatures measure the failure-rate scaling at the largest
        interval, from which the empirical Eq-1 coefficient is fitted.
        Fitting needs at least two *distinct* temperatures; with fewer, the
        summary reports ``measured_temp_coefficient=None`` instead of
        attempting a degenerate fit.

        Execution goes through :class:`repro.runner.RunnerEngine`:
        ``backend``/``workers`` select serial or process-pool execution,
        ``run_dir``/``resume`` make the run durable and restartable,
        ``max_retries`` bounds per-chip re-attempts before a failure row is
        recorded, and ``progress`` observes every completed chip.

        ``chips_per_unit`` > 1 ships chips to workers in fleet-batched
        chunks (one fused-evaluation :func:`repro.runner.measure_fleet`
        call per chunk) instead of one pool round-trip per chip.  Results
        are byte-identical to the per-chip path, the result store still
        holds one row per chip, and the campaign fingerprint is unchanged
        -- fleet and per-chip runs can resume each other's run
        directories.  ``None``/1 keeps the per-chip path.

        ``shared_population`` moves the fleet path's weak-cell populations
        into one ``multiprocessing.shared_memory`` struct-of-arrays segment
        built once per run: workers attach zero-copy views by segment name
        instead of redrawing every chip's tail per chunk.  Defaults to on
        whenever the fleet path is active; explicit ``True`` with
        ``chips_per_unit`` <= 1 is refused (per-chip workers rebuild from
        coordinates and never attach).  The campaign owns the segment's
        lifetime: it is unlinked in a ``finally`` (normal completion,
        cooperative cancel, and exceptions alike), and a ``shm.json``
        sidecar in the run directory lets the next open of that directory
        reclaim the segment a SIGKILLed run left behind.  Results are
        byte-identical with the knob on or off, so it is excluded from the
        campaign fingerprint.

        ``megakernel`` fuses each worker's per-(interval, temperature)
        profiling loop into whole-condition-grid numpy passes
        (:meth:`repro.core.fleetprof.FleetProfiler.run_grid`); byte-
        identical to the sequential loop and likewise fingerprint-exempt.

        ``condition_tiles`` shards the fleet path's work plane in two
        dimensions: each chunk's condition plan splits into that many
        contiguous condition tiles, and every (chunk, tile) pair ships
        as its own work unit (``0`` sizes the tiling automatically from
        the worker count; ``None`` keeps plain chunk dispatch).  Tile
        workers seek deterministically to their tile's entry state and
        the parent folds partial counts with an exact order-independent
        reduction, so summaries stay byte-identical to the chunk and
        per-chip paths for any tiling -- the knob is recorded in the
        manifest for operator forensics but excluded from the
        fingerprint, and every dispatch mode resumes every other's run
        directory.  ``tile_progress`` observes each completed tile with
        a ``{"done", "total", "open_groups", "oldest_open_s"}`` mapping
        (the service's live per-tile progress feed).

        ``should_stop`` plugs a cooperative-cancellation probe into the
        engine (graceful SIGINT/SIGTERM, the service's cancel endpoint):
        in-flight chips drain and persist, the manifest is marked
        interrupted, and the partial summary covers exactly the measured
        chips.  ``observability`` injects an explicit
        :class:`repro.obs.Observability` instance for per-run telemetry
        scoping (the service gives every job its own).
        """
        if not intervals_s or list(intervals_s) != sorted(intervals_s):
            raise ConfigurationError("intervals must be non-empty ascending")
        if not temperatures_c:
            raise ConfigurationError("need at least one temperature")
        if chips_per_unit is not None and chips_per_unit <= 0:
            raise ConfigurationError(
                f"chips_per_unit must be positive, got {chips_per_unit!r}"
            )
        backend = backend_from_spec(backend, workers=workers)
        fleet_active = chips_per_unit is not None and chips_per_unit > 1
        if shared_population and not fleet_active:
            raise ConfigurationError(
                "shared_population requires the fleet path (chips_per_unit > 1); "
                "per-chip workers rebuild from coordinates and never attach"
            )
        use_shm = fleet_active if shared_population is None else bool(shared_population)
        if condition_tiles is not None and condition_tiles < 0:
            raise ConfigurationError(
                f"condition_tiles must be >= 0 (0 = auto), got {condition_tiles!r}"
            )
        if condition_tiles is not None and not fleet_active:
            raise ConfigurationError(
                "condition_tiles requires the fleet path (chips_per_unit > 1); "
                "per-chip workers already walk their own condition plan"
            )
        # Reclaim the segment a SIGKILLed prior occupant of this run
        # directory may have left behind -- before creating our own.
        if run_dir is not None:
            cleanup_stale_segment(run_dir)
        vendor_names = tuple(VENDORS)
        units = build_chip_units(
            chips_per_vendor=self.chips_per_vendor,
            geometry=self.geometry,
            iterations=self.iterations,
            seed=self.seed,
            intervals_s=intervals_s,
            temperatures_c=temperatures_c,
            vendor_names=vendor_names,
            fast_path=self.fast_path,
        )
        resolved_tiles: Optional[int] = None
        if condition_tiles is not None:
            n_conditions = len(intervals_s) + len(temperatures_c) - 1
            if condition_tiles == 0:
                pool = backend if isinstance(backend, ProcessPoolBackend) else None
                n_chunks = -(-len(units) // int(chips_per_unit))
                resolved_tiles = auto_condition_tiles(
                    n_conditions,
                    n_chunks,
                    pool.workers if pool is not None else 1,
                )
                if resolved_tiles <= 1:
                    # Auto says tiling buys nothing here (serial backend,
                    # or plenty of chunks per worker already): fall back
                    # to chunk dispatch and skip the tile machinery.
                    resolved_tiles = None
            else:
                resolved_tiles = min(int(condition_tiles), n_conditions)
        manifest = {
            "kind": "characterization-campaign",
            "fingerprint": campaign_fingerprint(
                chips_per_vendor=self.chips_per_vendor,
                geometry=self.geometry,
                iterations=self.iterations,
                seed=self.seed,
                intervals_s=intervals_s,
                temperatures_c=temperatures_c,
                vendor_names=vendor_names,
            ),
            "chips_per_vendor": self.chips_per_vendor,
            "iterations": self.iterations,
            "seed": self.seed,
            "intervals_s": [float(t) for t in intervals_s],
            "temperatures_c": [float(t) for t in temperatures_c],
            "vendors": list(vendor_names),
            "n_units": len(units),
            # Not part of the fingerprint (older run dirs lack it): the
            # lake's analytics layer uses it to turn raw failure counts
            # into per-bit failure rates.
            "capacity_bits": int(self.geometry.capacity_bits),
            # Likewise fingerprint-exempt (results are byte-identical
            # for any tiling), but recorded so manifest_spec_diff names
            # the work-plane geometry whenever configurations diverge.
            "condition_tiles": resolved_tiles,
        }
        shm_store: Optional[SharedPopulationStore] = None
        dispatch = None
        if fleet_active:
            shm_descriptor = None
            if use_shm:
                max_trefi_s = max(float(t) for t in intervals_s) * TREFI_HEADROOM
                specs = [chip_sample_spec(u.payload, max_trefi_s) for u in units]
                pool = backend if isinstance(backend, ProcessPoolBackend) else None
                samples = build_population_samples(
                    specs,
                    executor=pool.executor if pool is not None else None,
                    workers=pool.workers if pool is not None else None,
                )
                shm_store = SharedPopulationStore.create(samples)
                del samples
                if run_dir is not None:
                    write_sidecar(run_dir, shm_store.segment_name)
                shm_descriptor = shm_store.descriptor()
            if resolved_tiles is not None:
                dispatch = fleet_tile_dispatch(
                    chips_per_unit,
                    resolved_tiles,
                    shm=shm_descriptor,
                    megakernel=bool(megakernel),
                    on_tile=tile_progress,
                    observability=observability,  # type: ignore[arg-type]
                )
            else:
                dispatch = fleet_dispatch(
                    chips_per_unit,
                    shm=shm_descriptor,
                    megakernel=bool(megakernel),
                )
        engine = RunnerEngine(
            backend=backend,
            workers=workers,
            run_dir=run_dir,
            resume=resume,
            max_retries=max_retries,
            progress=progress,
            observability=observability,  # type: ignore[arg-type]
            should_stop=should_stop,
        )
        try:
            report = engine.run(measure_chip, units, manifest, dispatch=dispatch)
        finally:
            # The campaign owns the segment: completion, cooperative
            # cancel, and exceptions all unlink it here.  Only kill -9
            # escapes, which the sidecar reclaims on the next open.
            if shm_store is not None:
                shm_store.unlink()
                if run_dir is not None:
                    remove_sidecar(run_dir)
        counts, temp_counts = aggregate_chip_results(report.results.values())

        # The Eq-1 fit is only meaningful across distinct temperatures.
        fit_temperatures = len({float(t) for t in temperatures_c}) >= 2

        capacity = self.geometry.capacity_bits
        vendors: Dict[str, VendorStatistics] = {}
        measured_chips = 0
        for vendor_name, by_interval in counts.items():
            ber = {
                trefi: (
                    float(np.mean(values)) / capacity,
                    float(np.std(values)) / capacity,
                )
                for trefi, values in by_interval.items()
            }
            n_chips = max(len(values) for values in by_interval.values())
            measured_chips += n_chips
            coefficient = (
                self._fit_temp_coefficient(temp_counts[vendor_name])
                if fit_temperatures
                else None
            )
            vendors[vendor_name] = VendorStatistics(
                vendor=vendor_name,
                n_chips=n_chips,
                ber_by_interval=ber,
                measured_temp_coefficient=coefficient,
                model_temp_coefficient=vendor_by_name(vendor_name).failure_rate_temp_coeff,
            )
        return CampaignSummary(
            n_chips=measured_chips,
            intervals_s=tuple(intervals_s),
            temperatures_c=tuple(temperatures_c),
            vendors=vendors,
            failed_units=tuple(sorted(report.failed_results())),
        )

    @staticmethod
    def _fit_temp_coefficient(by_temperature: Dict[float, List[int]]) -> Optional[float]:
        """ln(failures) vs temperature regression -> Eq-1 coefficient."""
        points = [
            (temp, float(np.mean(values)))
            for temp, values in sorted(by_temperature.items())
            if np.mean(values) > 0
        ]
        if len(points) < 2:
            return None
        temps = np.array([p[0] for p in points])
        lns = np.log(np.array([p[1] for p in points]))
        slope, _ = np.polyfit(temps, lns, 1)
        return float(slope)
