"""Population-scale characterization campaigns.

The paper's credibility rests on characterizing 368 chips across three
vendors.  :class:`CharacterizationCampaign` packages that workflow at any
population size: build a thermally controlled testbed, sweep refresh
intervals and temperatures, and aggregate per-vendor statistics -- the
measured BER curves, the empirical Eq-1 temperature coefficients, and the
spread across chips -- into a single summary report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import rng as rng_mod
from ..conditions import Conditions
from ..core.bruteforce import BruteForceProfiler
from ..dram.geometry import ChipGeometry
from ..errors import ConfigurationError
from ..infra.testbed import TestBed
from .characterization import DEFAULT_CHAR_GEOMETRY
from .report import ascii_table


@dataclass(frozen=True)
class VendorStatistics:
    """Aggregated measurements for one vendor's chip population."""

    vendor: str
    n_chips: int
    #: trefi_s -> (mean BER, std BER across chips)
    ber_by_interval: Dict[float, Tuple[float, float]]
    #: Empirical Eq-1 coefficient from the two-temperature measurement.
    measured_temp_coefficient: Optional[float]
    model_temp_coefficient: float


@dataclass(frozen=True)
class CampaignSummary:
    """Everything a campaign measured."""

    n_chips: int
    intervals_s: Tuple[float, ...]
    temperatures_c: Tuple[float, ...]
    vendors: Dict[str, VendorStatistics]

    def to_text(self) -> str:
        rows: List[List] = []
        for stats in self.vendors.values():
            for trefi, (mean, std) in sorted(stats.ber_by_interval.items()):
                rows.append([stats.vendor, trefi * 1e3, mean, std])
        table = ascii_table(
            ["vendor", "tREFI (ms)", "BER mean", "BER std"],
            rows,
            title=f"Campaign over {self.n_chips} chips",
        )
        lines = [table, "Temperature coefficients (Eq 1):"]
        for stats in self.vendors.values():
            measured = (
                f"{stats.measured_temp_coefficient:.3f}"
                if stats.measured_temp_coefficient is not None
                else "n/a"
            )
            lines.append(
                f"  vendor {stats.vendor}: measured k={measured} "
                f"(model k={stats.model_temp_coefficient:.2f})"
            )
        return "\n".join(lines)


class CharacterizationCampaign:
    """Runs a multi-chip, multi-vendor characterization campaign.

    Parameters
    ----------
    chips_per_vendor:
        Population size per vendor (the paper used ~123 per vendor; any
        size works, statistics tighten with more chips).
    geometry:
        Simulated chip capacity.
    iterations:
        Brute-force iterations per measurement point.
    """

    def __init__(
        self,
        chips_per_vendor: int = 2,
        geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
        iterations: int = 2,
        seed: int = rng_mod.DEFAULT_SEED,
    ) -> None:
        if chips_per_vendor <= 0:
            raise ConfigurationError("chips_per_vendor must be positive")
        self.chips_per_vendor = chips_per_vendor
        self.geometry = geometry
        self.iterations = iterations
        self.seed = seed

    def run(
        self,
        intervals_s: Sequence[float] = (0.512, 1.024, 2.048),
        temperatures_c: Sequence[float] = (45.0, 55.0),
    ) -> CampaignSummary:
        """Measure BER curves and temperature scaling across the population.

        The first temperature hosts the interval sweep; the remaining
        temperatures measure the failure-rate scaling at the largest
        interval, from which the empirical Eq-1 coefficient is fitted.
        """
        if not intervals_s or list(intervals_s) != sorted(intervals_s):
            raise ConfigurationError("intervals must be non-empty ascending")
        if not temperatures_c:
            raise ConfigurationError("need at least one temperature")
        bed = TestBed.build(
            chips_per_vendor=self.chips_per_vendor,
            geometry=self.geometry,
            seed=self.seed,
            max_trefi_s=max(intervals_s) * 1.05,
        )
        profiler = BruteForceProfiler(iterations=self.iterations)
        base_temp = temperatures_c[0]
        bed.set_ambient(base_temp)

        # Interval sweep at the base temperature.
        counts: Dict[str, Dict[float, List[int]]] = {}
        for trefi in intervals_s:
            profiles = bed.profile_all(profiler, Conditions(trefi=trefi, temperature=base_temp))
            for chip in bed.chips:
                counts.setdefault(chip.vendor.name, {}).setdefault(trefi, []).append(
                    len(profiles[chip.chip_id])
                )

        # Temperature scaling at the top interval.
        top = max(intervals_s)
        temp_counts: Dict[str, Dict[float, List[int]]] = {}
        for vendor_name in counts:
            temp_counts[vendor_name] = {base_temp: counts[vendor_name][top]}
        for temperature in temperatures_c[1:]:
            bed.set_ambient(temperature)
            profiles = bed.profile_all(profiler, Conditions(trefi=top, temperature=temperature))
            for chip in bed.chips:
                temp_counts[chip.vendor.name].setdefault(temperature, []).append(
                    len(profiles[chip.chip_id])
                )

        capacity = self.geometry.capacity_bits
        vendors: Dict[str, VendorStatistics] = {}
        for vendor_name, by_interval in counts.items():
            ber = {
                trefi: (
                    float(np.mean(values)) / capacity,
                    float(np.std(values)) / capacity,
                )
                for trefi, values in by_interval.items()
            }
            coefficient = self._fit_temp_coefficient(temp_counts[vendor_name])
            model_k = next(
                chip.vendor.failure_rate_temp_coeff
                for chip in bed.chips
                if chip.vendor.name == vendor_name
            )
            vendors[vendor_name] = VendorStatistics(
                vendor=vendor_name,
                n_chips=self.chips_per_vendor,
                ber_by_interval=ber,
                measured_temp_coefficient=coefficient,
                model_temp_coefficient=model_k,
            )
        return CampaignSummary(
            n_chips=len(bed.chips),
            intervals_s=tuple(intervals_s),
            temperatures_c=tuple(temperatures_c),
            vendors=vendors,
        )

    @staticmethod
    def _fit_temp_coefficient(by_temperature: Dict[float, List[int]]) -> Optional[float]:
        """ln(failures) vs temperature regression -> Eq-1 coefficient."""
        points = [
            (temp, float(np.mean(values)))
            for temp, values in sorted(by_temperature.items())
            if np.mean(values) > 0
        ]
        if len(points) < 2:
            return None
        temps = np.array([p[0] for p in points])
        lns = np.log(np.array([p[1] for p in points]))
        slope, _ = np.polyfit(temps, lns, 1)
        return float(slope)
