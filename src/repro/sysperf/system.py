"""Multi-core system performance model (Table 2 configuration).

Combines the per-core interval model, the DRAM timing model, and a queueing
approximation of channel contention into the quantity the paper's Figure 13
needs: weighted speedup of a 4-benchmark mix at a given refresh interval and
chip density, relative to the default 64 ms interval.

The latency model is a fixed point: core IPCs determine the DRAM request
rate, the request rate determines queueing delay, queueing delay feeds back
into IPC.  A handful of iterations converges.  The event-driven simulator in
:mod:`repro.sysperf.memctrl` validates the latency model's refresh-sensitivity
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .cpu import CoreModel
from .dramtiming import DRAMTimings
from .workloads import BenchmarkProfile, Mix


@dataclass(frozen=True)
class SystemConfig:
    """The evaluated system (Table 2)."""

    cores: int = 4
    channels: int = 4
    clock_ghz: float = 4.0
    mshrs_per_core: int = 8

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.channels <= 0:
            raise ConfigurationError("cores and channels must be positive")


@dataclass(frozen=True)
class MixResult:
    """Performance of one mix at one operating point."""

    ipcs: Tuple[float, ...]
    alone_ipcs: Tuple[float, ...]
    avg_latency_ns: float
    channel_utilization: float
    request_rate_per_ns: float = 0.0

    @property
    def weighted_speedup(self) -> float:
        """Sum of shared-IPC / alone-IPC (Section 7.2's multi-core metric)."""
        return sum(s / a for s, a in zip(self.ipcs, self.alone_ipcs))


class SystemSimulator:
    """Closed-form system model with contention fixed-point iteration."""

    #: Service time per request at the channel (data-bus occupancy).
    _ITERATIONS = 25

    def __init__(
        self,
        timings: Optional[DRAMTimings] = None,
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.timings = timings if timings is not None else DRAMTimings()
        self.config = config if config is not None else SystemConfig()

    # ------------------------------------------------------------------
    def _memory_latency_ns(
        self,
        profiles: Sequence[BenchmarkProfile],
        trefi_s: Optional[float],
    ) -> Tuple[Tuple[float, ...], float, float]:
        """Fixed-point per-core memory latencies under sharing.

        Each core sees its own unloaded latency (set by its row-buffer
        locality) plus the shared contention terms: M/D/1 queueing delay at
        the channel, a bank-conflict penalty that grows with utilization, and
        the refresh blocking delay.  Returns (per-core latencies in ns,
        channel utilization, total request rate).  ``trefi_s=None`` models
        refresh fully disabled.
        """
        timings = self.timings
        cores = [
            CoreModel(p, clock_ghz=self.config.clock_ghz, mshrs=self.config.mshrs_per_core)
            for p in profiles
        ]
        refresh_block = 0.0
        busy = 0.0
        if trefi_s is not None:
            refresh_block = timings.refresh_blocking_latency_ns(trefi_s)
            busy = timings.refresh_busy_fraction(trefi_s)

        service_ns = timings.tburst_ns
        bases = [timings.access_latency_ns(core.profile.row_hit_fraction) for core in cores]
        latencies = [base + refresh_block for base in bases]
        utilization = 0.0
        rate_total = 0.0
        for _ in range(self._ITERATIONS):
            rate_total = sum(
                core.request_rate_per_ns(latency)
                for core, latency in zip(cores, latencies)
            )
            rate_per_channel = rate_total / self.config.channels
            # Refresh removes a slice of channel capacity.
            capacity = (1.0 - busy) / service_ns
            utilization = min(rate_per_channel / capacity, 0.995)
            queue_factor = utilization / (2.0 * (1.0 - utilization))  # M/D/1 wait
            queue_wait = queue_factor * service_ns
            # Bank conflicts among independent streams close rows under
            # sharing: degrade locality with utilization.
            conflict_penalty = utilization * 0.3 * (
                timings.row_miss_latency_ns - timings.row_hit_latency_ns
            )
            # Damped update: demand beyond capacity inflates queueing delay
            # until the achieved request rate self-throttles to the channel
            # capacity, making saturated workloads capacity-bound (their
            # refresh gain is then the capacity ratio, not a latency blowup).
            latencies = [
                0.5 * latency
                + 0.5 * (base + conflict_penalty + queue_wait + refresh_block)
                for latency, base in zip(latencies, bases)
            ]
        return tuple(latencies), utilization, rate_total

    # ------------------------------------------------------------------
    def simulate_mix(self, mix: Mix, trefi_s: Optional[float]) -> MixResult:
        """Evaluate one 4-benchmark mix at a refresh interval.

        ``trefi_s=None`` evaluates the no-refresh upper bound (the "no ref"
        bars of Figure 13).
        """
        if not mix:
            raise ConfigurationError("mix must contain at least one benchmark")
        shared_latencies, utilization, rate = self._memory_latency_ns(mix, trefi_s)
        ipcs = tuple(
            CoreModel(p, self.config.clock_ghz, self.config.mshrs_per_core).ipc(latency)
            for p, latency in zip(mix, shared_latencies)
        )
        # Alone-run IPCs are evaluated at the JEDEC default interval so the
        # weighted-speedup denominator stays fixed across operating points;
        # improvements over the default then reflect shared-IPC gains.
        alone = []
        for profile in mix:
            alone_latencies, _, _ = self._memory_latency_ns([profile], 0.064)
            alone.append(
                CoreModel(profile, self.config.clock_ghz, self.config.mshrs_per_core).ipc(
                    alone_latencies[0]
                )
            )
        return MixResult(
            ipcs=ipcs,
            alone_ipcs=tuple(alone),
            avg_latency_ns=sum(shared_latencies) / len(shared_latencies),
            channel_utilization=utilization,
            request_rate_per_ns=rate,
        )

    def speedup_over_default(self, mix: Mix, trefi_s: Optional[float]) -> float:
        """Weighted-speedup improvement versus the 64 ms JEDEC default."""
        relaxed = self.simulate_mix(mix, trefi_s).weighted_speedup
        default = self.simulate_mix(mix, 0.064).weighted_speedup
        return relaxed / default - 1.0

    # ------------------------------------------------------------------
    # Event-driven reference path
    # ------------------------------------------------------------------
    def simulate_mix_event_driven(
        self,
        mix: Mix,
        trefi_s: Optional[float],
        requests_per_core: int = 1500,
        seed: int = 0x5EED,
    ) -> MixResult:
        """Evaluate a mix against the event-driven bank simulator.

        The slow, reference path: each core's open-loop request trace is
        interleaved round-robin across the channels and served by the
        FR-FCFS simulator; per-core IPCs follow from the measured average
        latency.  Traces are open-loop (arrival rates do not throttle with
        achieved IPC), so this path is pessimistic under saturation -- use
        it to validate the closed-form model's refresh sensitivity, not for
        large sweeps.
        """
        from .memctrl import MemoryControllerSim
        from .trace import TraceGenerator

        if not mix:
            raise ConfigurationError("mix must contain at least one benchmark")
        # Build per-channel request streams: each core spreads across all
        # channels, so every channel sees an interleaving of all cores.
        per_channel = [[] for _ in range(self.config.channels)]
        for core_index, profile in enumerate(mix):
            trace = TraceGenerator(
                profile,
                channels=self.config.channels,
                clock_ghz=self.config.clock_ghz,
                seed=seed + core_index,
            ).generate(requests_per_core)
            for i, request in enumerate(trace):
                per_channel[i % self.config.channels].append((core_index, request))

        total_latency = [0.0] * len(mix)
        counts = [0] * len(mix)
        utilizations = []
        for channel in per_channel:
            channel.sort(key=lambda pair: pair[1].arrival_ns)
            requests = [request for _, request in channel]
            if not requests:
                continue
            sim = MemoryControllerSim(self.timings, trefi_s=trefi_s)
            stats = sim.run(requests)
            utilizations.append(
                stats.bandwidth_requests_per_ns * self.timings.tburst_ns
            )
            # Attribute the channel's average latency to each core by its
            # request share (the simulator serves them interleaved).
            for core_index, _ in channel:
                total_latency[core_index] += stats.avg_latency_ns
                counts[core_index] += 1
        latencies = [
            total / max(count, 1) for total, count in zip(total_latency, counts)
        ]
        ipcs = tuple(
            CoreModel(p, self.config.clock_ghz, self.config.mshrs_per_core).ipc(latency)
            for p, latency in zip(mix, latencies)
        )
        alone = []
        for profile in mix:
            alone_latencies, _, _ = self._memory_latency_ns([profile], 0.064)
            alone.append(
                CoreModel(profile, self.config.clock_ghz, self.config.mshrs_per_core).ipc(
                    alone_latencies[0]
                )
            )
        return MixResult(
            ipcs=ipcs,
            alone_ipcs=tuple(alone),
            avg_latency_ns=sum(latencies) / len(latencies),
            channel_utilization=float(sum(utilizations) / max(len(utilizations), 1)),
            request_rate_per_ns=0.0,
        )
