"""Synthetic SPEC-CPU2006-like workload profiles.

The paper's end-to-end evaluation simulates "20 multiprogrammed
heterogeneous workload mixes, each of which is constructed by randomly
selecting 4 benchmarks from the SPEC CPU2006 benchmark suite" (Section 7.2).
SPEC itself is proprietary, so each benchmark is summarized by the handful
of parameters that determine its memory behaviour in a bank-level model:
LLC misses per kilo-instruction, row-buffer locality of the miss stream,
read/write balance, achievable memory-level parallelism, and the IPC it
would attain with a perfect memory system.  Parameter values follow the
well-known memory-intensity spectrum of the suite (mcf/lbm-like streaming
monsters down to povray-like compute-bound codes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .. import rng as rng_mod
from ..errors import ConfigurationError


@dataclass(frozen=True)
class BenchmarkProfile:
    """Memory-behaviour summary of one benchmark."""

    name: str
    mpki: float               # LLC misses per kilo-instruction
    row_hit_fraction: float   # row-buffer hit rate of the miss stream
    read_fraction: float      # fraction of misses that are reads
    mlp: float                # average outstanding misses (<= MSHRs)
    base_ipc: float           # IPC with a perfect (zero-latency) memory

    def __post_init__(self) -> None:
        if self.mpki < 0.0:
            raise ConfigurationError(f"mpki must be non-negative, got {self.mpki!r}")
        for field_name in ("row_hit_fraction", "read_fraction"):
            value = getattr(self, field_name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{field_name} must lie in [0, 1], got {value!r}")
        if self.mlp < 1.0:
            raise ConfigurationError(f"mlp must be >= 1, got {self.mlp!r}")
        if self.base_ipc <= 0.0:
            raise ConfigurationError(f"base_ipc must be positive, got {self.base_ipc!r}")


#: SPEC-like profiles spanning the suite's memory-intensity range.
SPEC_LIKE_BENCHMARKS: Tuple[BenchmarkProfile, ...] = (
    BenchmarkProfile("mcf_like", mpki=36.0, row_hit_fraction=0.25, read_fraction=0.75, mlp=6.0, base_ipc=1.2),
    BenchmarkProfile("lbm_like", mpki=30.0, row_hit_fraction=0.70, read_fraction=0.55, mlp=7.5, base_ipc=1.5),
    BenchmarkProfile("milc_like", mpki=25.0, row_hit_fraction=0.55, read_fraction=0.70, mlp=5.5, base_ipc=1.4),
    BenchmarkProfile("soplex_like", mpki=21.0, row_hit_fraction=0.45, read_fraction=0.80, mlp=4.5, base_ipc=1.3),
    BenchmarkProfile("libquantum_like", mpki=25.0, row_hit_fraction=0.90, read_fraction=0.85, mlp=8.0, base_ipc=1.6),
    BenchmarkProfile("omnetpp_like", mpki=17.0, row_hit_fraction=0.30, read_fraction=0.75, mlp=3.5, base_ipc=1.3),
    BenchmarkProfile("gcc_like", mpki=12.0, row_hit_fraction=0.50, read_fraction=0.70, mlp=3.0, base_ipc=1.6),
    BenchmarkProfile("sphinx_like", mpki=11.0, row_hit_fraction=0.60, read_fraction=0.90, mlp=3.5, base_ipc=1.7),
    BenchmarkProfile("bwaves_like", mpki=15.0, row_hit_fraction=0.75, read_fraction=0.60, mlp=6.0, base_ipc=1.5),
    BenchmarkProfile("cactus_like", mpki=9.0, row_hit_fraction=0.55, read_fraction=0.65, mlp=3.0, base_ipc=1.5),
    BenchmarkProfile("astar_like", mpki=6.0, row_hit_fraction=0.35, read_fraction=0.80, mlp=2.0, base_ipc=1.6),
    BenchmarkProfile("xalanc_like", mpki=5.0, row_hit_fraction=0.45, read_fraction=0.75, mlp=2.5, base_ipc=1.8),
    BenchmarkProfile("bzip2_like", mpki=4.0, row_hit_fraction=0.50, read_fraction=0.70, mlp=2.0, base_ipc=1.9),
    BenchmarkProfile("gobmk_like", mpki=2.0, row_hit_fraction=0.40, read_fraction=0.75, mlp=1.6, base_ipc=2.0),
    BenchmarkProfile("hmmer_like", mpki=1.2, row_hit_fraction=0.60, read_fraction=0.80, mlp=1.4, base_ipc=2.3),
    BenchmarkProfile("sjeng_like", mpki=1.0, row_hit_fraction=0.35, read_fraction=0.75, mlp=1.3, base_ipc=2.1),
    BenchmarkProfile("namd_like", mpki=0.8, row_hit_fraction=0.55, read_fraction=0.70, mlp=1.3, base_ipc=2.4),
    BenchmarkProfile("calculix_like", mpki=0.5, row_hit_fraction=0.60, read_fraction=0.65, mlp=1.2, base_ipc=2.5),
    BenchmarkProfile("gamess_like", mpki=0.3, row_hit_fraction=0.50, read_fraction=0.70, mlp=1.1, base_ipc=2.6),
    BenchmarkProfile("povray_like", mpki=0.1, row_hit_fraction=0.45, read_fraction=0.75, mlp=1.0, base_ipc=2.7),
)

Mix = Tuple[BenchmarkProfile, ...]


def benchmark_by_name(name: str) -> BenchmarkProfile:
    """Look up a built-in benchmark profile by its name."""
    for profile in SPEC_LIKE_BENCHMARKS:
        if profile.name == name:
            return profile
    raise ConfigurationError(f"unknown benchmark {name!r}")


def random_mix(rng, size: int = 4) -> Mix:
    """One multiprogrammed mix of ``size`` randomly chosen benchmarks."""
    if size <= 0:
        raise ConfigurationError(f"mix size must be positive, got {size!r}")
    picks = rng.choice(len(SPEC_LIKE_BENCHMARKS), size=size, replace=True)
    return tuple(SPEC_LIKE_BENCHMARKS[int(i)] for i in picks)


def workload_mixes(
    n_mixes: int = 20,
    mix_size: int = 4,
    seed: int = rng_mod.DEFAULT_SEED,
) -> List[Mix]:
    """The paper's 20 random heterogeneous 4-benchmark mixes."""
    if n_mixes <= 0:
        raise ConfigurationError(f"n_mixes must be positive, got {n_mixes!r}")
    rng = rng_mod.derive(seed, "workload-mixes")
    return [random_mix(rng, mix_size) for _ in range(n_mixes)]
