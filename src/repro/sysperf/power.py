"""DRAMPower-style energy model.

Per-command energy accounting for LPDDR4-class devices: row
activate/precharge energy, per-bit read/write energy, all-bank refresh
energy (scaling with the rows refreshed per command, hence with density),
and background power.  Used for three of the paper's results:

* the refresh share of DRAM power at the default interval (up to ~50% for
  large devices -- the paper's motivating fact),
* the DRAM power consumed by profiling itself (Figure 12),
* the total-power reduction from longer refresh intervals (Figure 13,
  bottom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dram.timing import refresh_timings
from ..errors import ConfigurationError

_NJ_TO_MW_PER_NS = 1e6  # 1 nJ / 1 ns = 1e6 mW; used via explicit conversions


@dataclass(frozen=True)
class PowerModel:
    """Energy constants for one chip density.

    Parameters
    ----------
    density_gigabits:
        Chip density (8-64 Gb); sets rows-per-refresh-command and tRFC.
    background_mw:
        Standby/peripheral power per chip.
    row_refresh_energy_nj:
        Energy to refresh one row (activate + restore + precharge).
    access_energy_pj_per_bit:
        Read/write data-path energy.
    activate_energy_nj:
        Row activation energy for demand accesses.
    """

    density_gigabits: int = 8
    background_mw: float = 40.0
    row_refresh_energy_nj: float = 0.65
    access_energy_pj_per_bit: float = 5.0
    activate_energy_nj: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "background_mw",
            "row_refresh_energy_nj",
            "access_energy_pj_per_bit",
            "activate_energy_nj",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    @property
    def rows_per_refresh_command(self) -> int:
        """Rows restored by one all-bank REF (total rows / 8192 commands)."""
        info = refresh_timings(self.density_gigabits)
        total_rows = info.rows_per_bank * 8
        return total_rows // info.refresh_commands_per_window

    def refresh_energy_per_command_nj(self) -> float:
        return self.rows_per_refresh_command * self.row_refresh_energy_nj

    def refresh_power_mw(self, trefi_s: Optional[float]) -> float:
        """Average refresh power at a refresh window (0 when disabled)."""
        if trefi_s is None:
            return 0.0
        if trefi_s <= 0.0:
            raise ConfigurationError("trefi must be positive")
        commands_per_second = 8192.0 / trefi_s
        return self.refresh_energy_per_command_nj() * commands_per_second * 1e-6

    # ------------------------------------------------------------------
    # Demand accesses
    # ------------------------------------------------------------------
    def access_power_mw(self, requests_per_ns: float, bits_per_request: int = 512) -> float:
        """Power of a demand-access stream (64-byte requests by default)."""
        if requests_per_ns < 0.0:
            raise ConfigurationError("request rate must be non-negative")
        energy_per_request_nj = (
            self.activate_energy_nj * 0.5  # ~half of requests open a new row
            + bits_per_request * self.access_energy_pj_per_bit * 1e-3
        )
        return requests_per_ns * energy_per_request_nj * 1e9 * 1e-6

    def total_power_mw(self, trefi_s: Optional[float], requests_per_ns: float = 0.0) -> float:
        return (
            self.background_mw
            + self.refresh_power_mw(trefi_s)
            + self.access_power_mw(requests_per_ns)
        )

    def refresh_share(self, trefi_s: float, requests_per_ns: float = 0.0) -> float:
        """Fraction of total DRAM power spent on refresh."""
        return self.refresh_power_mw(trefi_s) / self.total_power_mw(trefi_s, requests_per_ns)

    # ------------------------------------------------------------------
    # Profiling energy (Figure 12)
    # ------------------------------------------------------------------
    def profiling_round_energy_j(
        self,
        capacity_bits: int,
        n_patterns: int = 12,
        n_iterations: int = 16,
    ) -> float:
        """Energy of the *extra* DRAM commands in one profiling round.

        One pass writes and reads the whole array; the retention wait itself
        costs no extra commands (refresh is disabled), which is why the
        paper finds profiling power negligible.
        """
        if capacity_bits <= 0:
            raise ConfigurationError("capacity must be positive")
        bits_moved = 2.0 * capacity_bits  # one write + one read pass
        rows_touched = 2.0 * capacity_bits / 16384.0
        energy_nj = (
            bits_moved * self.access_energy_pj_per_bit * 1e-3
            + rows_touched * self.activate_energy_nj
        )
        return energy_nj * n_patterns * n_iterations * 1e-9

    def profiling_power_mw(
        self,
        capacity_bits: int,
        profiling_interval_s: float,
        n_patterns: int = 12,
        n_iterations: int = 16,
    ) -> float:
        """Round energy amortized over the online profiling interval."""
        if profiling_interval_s <= 0.0:
            raise ConfigurationError("profiling interval must be positive")
        energy = self.profiling_round_energy_j(capacity_bits, n_patterns, n_iterations)
        return energy / profiling_interval_s * 1e3
