"""End-to-end profiling-overhead integration (Eq 8, Figures 11-13).

Ties everything together: the Eq-9 runtime of an online profiling round, the
Eq-7 profile longevity that dictates how often rounds recur, the system
performance model (weighted speedup at relaxed refresh intervals), and the
power model.  Performance with online profiling follows the paper's Eq 8:

    IPC_real = IPC_ideal * (1 - profiling_overhead)

pessimistically assuming zero forward progress while profiling.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..conditions import Conditions
from ..core.longevity import longevity_for_system
from ..core.runtime_model import round_runtime_seconds
from ..dram.geometry import GIBIBIT
from ..dram.vendor import VENDOR_B, VendorModel
from ..ecc.model import CONSUMER_UBER, SECDED, EccStrength
from ..errors import ConfigurationError
from .power import PowerModel
from .system import SystemConfig, SystemSimulator
from .workloads import Mix
from .dramtiming import DRAMTimings

#: Online-round configuration of Figure 11: 16 iterations of the 6 base
#: data patterns (inverses folded into the per-pattern pass).
ONLINE_PATTERNS = 6
ONLINE_ITERATIONS = 16

#: The experimentally determined reach-profiling speedup (Section 6.1.2).
REAPER_SPEEDUP = 2.5


class ProfilerKind(enum.Enum):
    """The three profiling mechanisms Figure 13 compares."""

    BRUTE_FORCE = "brute-force"
    REAPER = "reaper"
    IDEAL = "ideal"


@dataclass(frozen=True)
class EndToEndPoint:
    """One bar of Figure 13: a (mix, interval, profiler) evaluation."""

    mix_index: int
    trefi_s: Optional[float]  # None = refresh disabled
    profiler: ProfilerKind
    performance_improvement: float
    power_reduction: float
    profiling_overhead: float


class EndToEndEvaluator:
    """Reproduces the Figure 11/12/13 sweeps for a module configuration.

    Parameters
    ----------
    chip_density_gigabits / n_chips:
        Module composition (the paper sweeps 8-64 Gb chips, 32 per module).
    vendor / ecc / target_uber / temperature_c:
        Inputs to the longevity model that sets the online profiling
        frequency.
    reprofile_safety_factor:
        Fraction of the estimated profile longevity actually used between
        rounds (reprofiling strictly before the ECC budget runs out).
    reaper_speedup:
        Runtime advantage of reach profiling over brute force.
    """

    def __init__(
        self,
        chip_density_gigabits: int = 64,
        n_chips: int = 32,
        vendor: VendorModel = VENDOR_B,
        ecc: EccStrength = SECDED,
        target_uber: float = CONSUMER_UBER,
        temperature_c: float = 45.0,
        reprofile_safety_factor: float = 0.5,
        reaper_speedup: float = REAPER_SPEEDUP,
        config: Optional[SystemConfig] = None,
    ) -> None:
        if n_chips <= 0:
            raise ConfigurationError("n_chips must be positive")
        if not (0.0 < reprofile_safety_factor <= 1.0):
            raise ConfigurationError("safety factor must lie in (0, 1]")
        if reaper_speedup < 1.0:
            raise ConfigurationError("reach profiling cannot be slower than brute force")
        self.chip_density_gigabits = chip_density_gigabits
        self.n_chips = n_chips
        self.vendor = vendor
        self.ecc = ecc
        self.target_uber = target_uber
        self.temperature_c = temperature_c
        self.reprofile_safety_factor = reprofile_safety_factor
        self.reaper_speedup = reaper_speedup
        self.system = SystemSimulator(
            timings=DRAMTimings(density_gigabits=chip_density_gigabits),
            config=config,
        )
        self.power_model = PowerModel(density_gigabits=chip_density_gigabits)

    # ------------------------------------------------------------------
    @property
    def module_bits(self) -> int:
        return int(self.chip_density_gigabits * GIBIBIT) * self.n_chips

    def round_seconds(self, kind: ProfilerKind, trefi_s: float) -> float:
        """Runtime of one online profiling round (Eq 9)."""
        if kind is ProfilerKind.IDEAL:
            return 0.0
        brute = round_runtime_seconds(
            trefi_s, self.module_bits, n_patterns=ONLINE_PATTERNS, n_iterations=ONLINE_ITERATIONS
        )
        if kind is ProfilerKind.BRUTE_FORCE:
            return brute
        return brute / self.reaper_speedup

    def reprofile_interval_seconds(self, trefi_s: float) -> float:
        """Online profiling cadence derived from profile longevity.

        Matches Figure 13's best-case assumption of full coverage each round
        (C = 0), scaled by the safety factor.
        """
        estimate = longevity_for_system(
            vendor=self.vendor,
            capacity_bytes=self.module_bits // 8,
            ecc=self.ecc,
            target=Conditions(trefi=trefi_s, temperature=self.temperature_c),
            coverage=1.0,
            target_uber=self.target_uber,
        )
        return estimate.longevity_seconds * self.reprofile_safety_factor

    def profiling_overhead(self, kind: ProfilerKind, trefi_s: Optional[float]) -> float:
        """Fraction of system time spent paused for profiling (Figure 11)."""
        if kind is ProfilerKind.IDEAL or trefi_s is None:
            return 0.0
        interval = self.reprofile_interval_seconds(trefi_s)
        if math.isinf(interval):
            return 0.0
        round_s = self.round_seconds(kind, trefi_s)
        return min(round_s / (round_s + interval), 1.0)

    # ------------------------------------------------------------------
    # Figure 13
    # ------------------------------------------------------------------
    def evaluate_mix(
        self,
        mix: Mix,
        trefi_s: Optional[float],
        kind: ProfilerKind,
        mix_index: int = 0,
    ) -> EndToEndPoint:
        """Performance and power of one mix under one profiler (Eq 8)."""
        improvement = self.system.speedup_over_default(mix, trefi_s)
        overhead = self.profiling_overhead(kind, trefi_s)
        real_improvement = (1.0 + improvement) * (1.0 - overhead) - 1.0

        shared = self.system.simulate_mix(mix, trefi_s)
        baseline = self.system.simulate_mix(mix, 0.064)
        power_relaxed = self._module_power_mw(trefi_s, shared.request_rate_per_ns)
        if kind is not ProfilerKind.IDEAL and trefi_s is not None:
            interval = self.reprofile_interval_seconds(trefi_s)
            if math.isfinite(interval) and interval > 0.0:
                power_relaxed += self.power_model.profiling_power_mw(
                    self.module_bits,
                    interval,
                    n_patterns=ONLINE_PATTERNS,
                    n_iterations=(
                        ONLINE_ITERATIONS
                        if kind is ProfilerKind.BRUTE_FORCE
                        else max(1, round(ONLINE_ITERATIONS / self.reaper_speedup))
                    ),
                )
        power_baseline = self._module_power_mw(0.064, baseline.request_rate_per_ns)
        return EndToEndPoint(
            mix_index=mix_index,
            trefi_s=trefi_s,
            profiler=kind,
            performance_improvement=real_improvement,
            power_reduction=1.0 - power_relaxed / power_baseline,
            profiling_overhead=overhead,
        )

    def _module_power_mw(self, trefi_s: Optional[float], requests_per_ns: float) -> float:
        per_chip = self.power_model.background_mw + self.power_model.refresh_power_mw(trefi_s)
        return per_chip * self.n_chips + self.power_model.access_power_mw(requests_per_ns)

    def sweep(
        self,
        mixes: Sequence[Mix],
        trefis_s: Sequence[Optional[float]],
        kinds: Sequence[ProfilerKind] = tuple(ProfilerKind),
    ) -> List[EndToEndPoint]:
        """The full Figure-13 grid."""
        points: List[EndToEndPoint] = []
        for trefi in trefis_s:
            for kind in kinds:
                for index, mix in enumerate(mixes):
                    points.append(self.evaluate_mix(mix, trefi, kind, mix_index=index))
        return points

    # ------------------------------------------------------------------
    # ArchShield combination (Section 7.3.2)
    # ------------------------------------------------------------------
    def with_archshield(
        self,
        point: EndToEndPoint,
        archshield_cost: float = 0.01,
    ) -> float:
        """Overall improvement when paired with ArchShield's ~1% cost."""
        if not (0.0 <= archshield_cost < 1.0):
            raise ConfigurationError("archshield_cost must lie in [0, 1)")
        return (1.0 + point.performance_improvement) * (1.0 - archshield_cost) - 1.0


# ----------------------------------------------------------------------
# Figure 11 / Figure 12: sweeps over externally imposed profiling intervals
# ----------------------------------------------------------------------
def profiling_time_fraction(
    kind: ProfilerKind,
    profiling_interval_s: float,
    chip_density_gigabits: int,
    n_chips: int = 32,
    trefi_s: float = 1.024,
    reaper_speedup: float = REAPER_SPEEDUP,
) -> float:
    """Share of system time spent profiling at a fixed online cadence.

    This is Figure 11's bar height: one brute-force (or REAPER) round at the
    given refresh interval, repeated every ``profiling_interval_s``.
    """
    if profiling_interval_s <= 0.0:
        raise ConfigurationError("profiling interval must be positive")
    if kind is ProfilerKind.IDEAL:
        return 0.0
    module_bits = int(chip_density_gigabits * GIBIBIT) * n_chips
    round_s = round_runtime_seconds(
        trefi_s, module_bits, n_patterns=ONLINE_PATTERNS, n_iterations=ONLINE_ITERATIONS
    )
    if kind is ProfilerKind.REAPER:
        round_s /= reaper_speedup
    return min(round_s / profiling_interval_s, 1.0)


def profiling_power_mw(
    kind: ProfilerKind,
    profiling_interval_s: float,
    chip_density_gigabits: int,
    n_chips: int = 32,
    reaper_speedup: float = REAPER_SPEEDUP,
) -> float:
    """Figure 12: DRAM power attributable to profiling itself."""
    if kind is ProfilerKind.IDEAL:
        return 0.0
    model = PowerModel(density_gigabits=chip_density_gigabits)
    module_bits = int(chip_density_gigabits * GIBIBIT) * n_chips
    iterations = ONLINE_ITERATIONS
    if kind is ProfilerKind.REAPER:
        iterations = max(1, round(ONLINE_ITERATIONS / reaper_speedup))
    return model.profiling_power_mw(
        module_bits,
        profiling_interval_s,
        n_patterns=ONLINE_PATTERNS,
        n_iterations=iterations,
    )
