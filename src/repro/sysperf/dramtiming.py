"""LPDDR4-3200 device timings for the system-performance model (Table 2).

Latency constants are expressed in nanoseconds.  Refresh parameters (tRFC by
density, 8192 all-bank refresh commands per tREFW window) come from
:mod:`repro.dram.timing`; everything here is the access-path side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.timing import refresh_timings
from ..errors import ConfigurationError


#: Per-bank refresh blocks one bank for a fraction of the all-bank tRFC
#: (LPDDR4's REFpb commands restore 1/8 of the rows per command but avoid
#: stalling the whole rank; the cycle time shrinks sub-linearly).
PER_BANK_TRFC_RATIO = 0.45


@dataclass(frozen=True)
class DRAMTimings:
    """Access-path timing of one LPDDR4-3200 configuration.

    ``per_bank_refresh`` selects LPDDR4's REFpb mode: refresh commands
    block a single bank for a shorter ``tRFCpb`` instead of stalling the
    whole rank for ``tRFCab``.  Refresh-reduction mechanisms of this kind
    compose with REAPER (Section 8 of the paper).
    """

    density_gigabits: int = 8
    trcd_ns: float = 18.0     # row activate to column command
    trp_ns: float = 18.0      # precharge
    cl_ns: float = 17.5       # CAS latency (read)
    tburst_ns: float = 5.0    # BL16 data burst at 3200 MT/s
    tras_ns: float = 42.0     # minimum row-open time
    per_bank_refresh: bool = False
    n_banks: int = 8

    def __post_init__(self) -> None:
        for name in ("trcd_ns", "trp_ns", "cl_ns", "tburst_ns", "tras_ns"):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(f"{name} must be positive")
        if self.n_banks <= 0:
            raise ConfigurationError("n_banks must be positive")

    # ------------------------------------------------------------------
    @property
    def trfc_ab_ns(self) -> float:
        """All-bank refresh cycle time for this density."""
        return refresh_timings(self.density_gigabits).trfc_ns

    @property
    def trfc_pb_ns(self) -> float:
        """Per-bank refresh cycle time (REFpb)."""
        return self.trfc_ab_ns * PER_BANK_TRFC_RATIO

    @property
    def trfc_ns(self) -> float:
        """Cycle time of the configured refresh command."""
        return self.trfc_pb_ns if self.per_bank_refresh else self.trfc_ab_ns

    @property
    def row_hit_latency_ns(self) -> float:
        """Column access into an already-open row."""
        return self.cl_ns + self.tburst_ns

    @property
    def row_miss_latency_ns(self) -> float:
        """Precharge + activate + column access (closed-row miss)."""
        return self.trp_ns + self.trcd_ns + self.cl_ns + self.tburst_ns

    def access_latency_ns(self, row_hit_fraction: float) -> float:
        """Mean unloaded access latency for a given row-buffer hit rate."""
        if not (0.0 <= row_hit_fraction <= 1.0):
            raise ConfigurationError("row_hit_fraction must lie in [0, 1]")
        return (
            row_hit_fraction * self.row_hit_latency_ns
            + (1.0 - row_hit_fraction) * self.row_miss_latency_ns
        )

    # ------------------------------------------------------------------
    # Refresh interference
    # ------------------------------------------------------------------
    def refresh_command_period_ns(self, trefi_s: float) -> float:
        """Spacing between refresh commands *per bank* at a refresh window.

        JEDEC distributes 8192 refresh commands across each tREFW window
        (all-bank mode refreshes every bank per command; per-bank mode
        issues 8192 commands to each bank, interleaved), so every bank is
        refreshed once per ``trefi / 8192`` either way.
        """
        if trefi_s <= 0.0:
            raise ConfigurationError("trefi must be positive")
        commands = refresh_timings(self.density_gigabits).refresh_commands_per_window
        return trefi_s * 1e9 / commands

    def refresh_busy_fraction(self, trefi_s: float) -> float:
        """Fraction of time a bank is blocked executing refresh.

        All-bank mode: the whole rank stalls for tRFCab out of every command
        period (~8% for a 64 Gb device at the 64 ms default).  Per-bank
        mode: each bank individually stalls for the shorter tRFCpb, so the
        busy fraction shrinks by ``PER_BANK_TRFC_RATIO`` and the stalls no
        longer hit every bank at once.
        """
        fraction = self.trfc_ns / self.refresh_command_period_ns(trefi_s)
        return min(fraction, 1.0)

    def refresh_blocking_latency_ns(self, trefi_s: float) -> float:
        """Expected extra latency per request from refresh collisions.

        A request arriving uniformly at random overlaps an in-progress
        refresh of *its* bank with probability equal to the busy fraction
        and then waits half a refresh cycle on average.  Per-bank refresh
        wins twice here: the collision probability and the residual wait
        both shrink with tRFCpb.
        """
        return self.refresh_busy_fraction(trefi_s) * self.trfc_ns / 2.0
