"""Memory-request trace generation for the bank-level simulator.

Converts a :class:`~repro.sysperf.workloads.BenchmarkProfile` into a stream
of timed DRAM requests with the profile's row-buffer locality and read/write
balance.  Traces drive :class:`~repro.sysperf.memctrl.MemoryControllerSim`,
the event-driven model used to validate the closed-form latency model in
:mod:`repro.sysperf.system`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import rng as rng_mod
from ..errors import ConfigurationError
from .workloads import BenchmarkProfile


@dataclass(frozen=True)
class MemRequest:
    """One DRAM request as seen by a memory-controller channel."""

    arrival_ns: float
    bank: int
    row: int
    is_read: bool


class TraceGenerator:
    """Generates per-channel request streams from a benchmark profile."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        n_banks: int = 8,
        n_rows: int = 65536,
        clock_ghz: float = 4.0,
        channels: int = 4,
        seed: int = rng_mod.DEFAULT_SEED,
    ) -> None:
        if n_banks <= 0 or n_rows <= 0:
            raise ConfigurationError("bank/row counts must be positive")
        if clock_ghz <= 0.0 or channels <= 0:
            raise ConfigurationError("clock and channel count must be positive")
        self.profile = profile
        self.n_banks = n_banks
        self.n_rows = n_rows
        self.clock_ghz = clock_ghz
        self.channels = channels
        self._rng = rng_mod.derive(seed, "trace", profile.name)

    @property
    def request_rate_per_ns(self) -> float:
        """Per-channel request arrival rate implied by the profile.

        The core retires ``base_ipc * clock`` instructions/ns and misses
        ``mpki`` per thousand; misses spread across channels.
        """
        per_core = self.profile.mpki / 1000.0 * self.profile.base_ipc * self.clock_ghz
        return per_core / self.channels

    def generate(self, n_requests: int, rate_scale: float = 1.0) -> List[MemRequest]:
        """Generate ``n_requests`` with Poisson arrivals and row locality.

        ``rate_scale`` scales the arrival intensity (e.g. to emulate several
        cores sharing the channel).
        """
        if n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")
        if rate_scale <= 0.0:
            raise ConfigurationError("rate_scale must be positive")
        rate = self.request_rate_per_ns * rate_scale
        if rate <= 0.0:
            raise ConfigurationError(
                f"profile {self.profile.name!r} generates no memory traffic"
            )
        rng = self._rng
        gaps = rng.exponential(1.0 / rate, size=n_requests)
        arrivals = np.cumsum(gaps)
        open_rows = [int(rng.integers(0, self.n_rows)) for _ in range(self.n_banks)]
        requests: List[MemRequest] = []
        for arrival in arrivals:
            bank = int(rng.integers(0, self.n_banks))
            if rng.random() < self.profile.row_hit_fraction:
                row = open_rows[bank]
            else:
                row = int(rng.integers(0, self.n_rows))
                open_rows[bank] = row
            requests.append(
                MemRequest(
                    arrival_ns=float(arrival),
                    bank=bank,
                    row=row,
                    is_read=bool(rng.random() < self.profile.read_fraction),
                )
            )
        return requests
