"""Interval-analysis core performance model.

Each core is summarized by its benchmark profile: compute-bound progress at
``base_ipc`` punctuated by LLC misses that stall the core for the memory
latency, overlapped up to the profile's memory-level parallelism (bounded by
the 8 MSHRs per core of Table 2).  This is the standard first-order model
behind interval simulation: time per kilo-instruction is compute time plus
(misses x latency / MLP).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .workloads import BenchmarkProfile


@dataclass(frozen=True)
class CoreModel:
    """One core running one benchmark profile."""

    profile: BenchmarkProfile
    clock_ghz: float = 4.0
    mshrs: int = 8

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0.0:
            raise ConfigurationError("clock must be positive")
        if self.mshrs <= 0:
            raise ConfigurationError("MSHR count must be positive")

    @property
    def effective_mlp(self) -> float:
        """Achievable miss overlap, bounded by the MSHRs."""
        return min(self.profile.mlp, float(self.mshrs))

    def ipc(self, avg_memory_latency_ns: float) -> float:
        """Instructions per cycle at a given average memory latency."""
        if avg_memory_latency_ns < 0.0:
            raise ConfigurationError("latency must be non-negative")
        latency_cycles = avg_memory_latency_ns * self.clock_ghz
        compute_cycles_per_ki = 1000.0 / self.profile.base_ipc
        stall_cycles_per_ki = self.profile.mpki * latency_cycles / self.effective_mlp
        return 1000.0 / (compute_cycles_per_ki + stall_cycles_per_ki)

    def request_rate_per_ns(self, avg_memory_latency_ns: float) -> float:
        """DRAM request rate the core generates at its achieved IPC."""
        return self.ipc(avg_memory_latency_ns) * self.clock_ghz * self.profile.mpki / 1000.0
