"""Event-driven bank-level memory-controller simulator.

A compact Ramulator-class model of one channel: per-bank row-buffer state,
FR-CFS scheduling (row hits first, then oldest -- the FR-FCFS policy of
Table 2), and rank-wide all-bank refresh that blocks every bank for tRFC at
JEDEC's 8192-commands-per-window cadence.

This simulator is the ground truth the closed-form latency model in
:mod:`repro.sysperf.system` is validated against in the test suite; the
large Figure-13 sweeps use the closed form for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from .dramtiming import DRAMTimings
from .trace import MemRequest


@dataclass(frozen=True)
class SimStats:
    """Aggregate results of one channel simulation."""

    served: int
    avg_latency_ns: float
    max_latency_ns: float
    avg_queue_depth: float
    refresh_busy_fraction: float
    row_hit_rate: float
    duration_ns: float

    @property
    def bandwidth_requests_per_ns(self) -> float:
        if self.duration_ns <= 0.0:
            return 0.0
        return self.served / self.duration_ns


class MemoryControllerSim:
    """One-channel FR-FCFS memory controller with refresh blocking.

    ``row_policy`` selects between keeping rows open after an access
    ("open", exploits locality -- Table 2's single-core setting) and
    precharging immediately ("closed", avoids conflict penalties under
    interleaved multi-core streams).
    """

    def __init__(
        self,
        timings: DRAMTimings,
        trefi_s: Optional[float] = 0.064,
        n_banks: int = 8,
        queue_depth: int = 64,
        row_policy: str = "open",
    ) -> None:
        if n_banks <= 0 or queue_depth <= 0:
            raise ConfigurationError("bank count and queue depth must be positive")
        if row_policy not in ("open", "closed"):
            raise ConfigurationError(f"unknown row policy {row_policy!r}")
        self.timings = timings
        self.trefi_s = trefi_s
        self.n_banks = n_banks
        self.queue_depth = queue_depth
        self.row_policy = row_policy

    # ------------------------------------------------------------------
    def _refresh_delay(self, time_ns: float, bank: int) -> float:
        """If ``time_ns`` falls inside a refresh affecting ``bank``, return
        the end of that refresh; otherwise return ``time_ns`` unchanged.

        All-bank refresh blocks every bank simultaneously; per-bank refresh
        staggers the banks across the command period so only the targeted
        bank stalls.
        """
        if self.trefi_s is None:
            return time_ns
        period = self.timings.refresh_command_period_ns(self.trefi_s)
        trfc = self.timings.trfc_ns
        if self.timings.per_bank_refresh:
            phase = (bank % self.n_banks) * period / self.n_banks
            offset = (time_ns - phase) % period
        else:
            offset = time_ns % period
        if offset < trfc:
            return time_ns + (trfc - offset)
        return time_ns

    def run(self, requests: Sequence[MemRequest]) -> SimStats:
        """Serve a request trace to completion and report statistics."""
        if not requests:
            raise ConfigurationError("empty request trace")
        timings = self.timings
        open_rows: List[Optional[int]] = [None] * self.n_banks
        bank_free_ns = [0.0] * self.n_banks
        pending: List[MemRequest] = []
        upcoming = sorted(requests, key=lambda r: r.arrival_ns)
        next_idx = 0
        now = 0.0
        total_latency = 0.0
        max_latency = 0.0
        hits = 0
        served = 0
        queue_area = 0.0
        last_time = 0.0

        while served < len(requests):
            # Admit arrivals up to the current time (bounded by queue depth).
            while (
                next_idx < len(upcoming)
                and upcoming[next_idx].arrival_ns <= now
                and len(pending) < self.queue_depth
            ):
                pending.append(upcoming[next_idx])
                next_idx += 1
            if not pending:
                # Jump to the next arrival.
                now = max(now, upcoming[next_idx].arrival_ns)
                continue

            # FR-FCFS with bank-readiness: prefer the oldest row hit on a
            # bank that can issue immediately (not busy, not refreshing),
            # then the oldest request on a ready bank, then the oldest
            # overall.  Without the readiness check, staggered per-bank
            # refresh would cause artificial head-of-line blocking.
            def ready(request: MemRequest) -> bool:
                if bank_free_ns[request.bank] > now:
                    return False
                return self._refresh_delay(now, request.bank) == now

            chosen = None
            for request in pending:
                if ready(request) and open_rows[request.bank] == request.row:
                    chosen = request
                    break
            if chosen is None:
                for request in pending:
                    if ready(request):
                        chosen = request
                        break
            if chosen is None:
                chosen = pending[0]
            pending.remove(chosen)

            start = max(now, chosen.arrival_ns, bank_free_ns[chosen.bank])
            start = self._refresh_delay(start, chosen.bank)
            if open_rows[chosen.bank] == chosen.row:
                service = timings.row_hit_latency_ns
                hits += 1
            elif self.row_policy == "closed" or open_rows[chosen.bank] is None:
                # The bank is precharged: activate + column access, no
                # precharge on the critical path.
                service = timings.trcd_ns + timings.cl_ns + timings.tburst_ns
                open_rows[chosen.bank] = chosen.row
            else:
                service = timings.row_miss_latency_ns
                open_rows[chosen.bank] = chosen.row
            if self.row_policy == "closed":
                # Auto-precharge: the next access can never row-hit, but the
                # precharge happens off the critical path.
                open_rows[chosen.bank] = None
            finish = start + service
            bank_free_ns[chosen.bank] = finish
            # The channel issues commands serially; approximate command-bus
            # occupancy with the burst time.
            now = start + timings.tburst_ns

            latency = finish - chosen.arrival_ns
            total_latency += latency
            max_latency = max(max_latency, latency)
            served += 1
            queue_area += len(pending) * (now - last_time)
            last_time = now

        duration = max(bank_free_ns)
        busy = 0.0
        if self.trefi_s is not None:
            busy = timings.refresh_busy_fraction(self.trefi_s)
        return SimStats(
            served=served,
            avg_latency_ns=total_latency / served,
            max_latency_ns=max_latency,
            avg_queue_depth=queue_area / duration if duration > 0 else 0.0,
            refresh_busy_fraction=busy,
            row_hit_rate=hits / served,
            duration_ns=duration,
        )
