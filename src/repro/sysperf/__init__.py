"""System-performance substrate: the Ramulator + DRAMPower stand-in.

Bank-level memory-controller simulation, interval-analysis core models,
synthetic SPEC-like workloads, a DRAM power model, and the Eq-8/Eq-9
end-to-end integration behind Figures 11-13.
"""

from .cpu import CoreModel
from .dramtiming import DRAMTimings
from .memctrl import MemoryControllerSim, SimStats
from .overhead import (
    EndToEndEvaluator,
    EndToEndPoint,
    ONLINE_ITERATIONS,
    ONLINE_PATTERNS,
    ProfilerKind,
    REAPER_SPEEDUP,
    profiling_power_mw,
    profiling_time_fraction,
)
from .power import PowerModel
from .system import MixResult, SystemConfig, SystemSimulator
from .trace import MemRequest, TraceGenerator
from .workloads import (
    BenchmarkProfile,
    Mix,
    SPEC_LIKE_BENCHMARKS,
    benchmark_by_name,
    random_mix,
    workload_mixes,
)

__all__ = [
    "CoreModel",
    "DRAMTimings",
    "MemoryControllerSim",
    "SimStats",
    "MemRequest",
    "TraceGenerator",
    "BenchmarkProfile",
    "Mix",
    "SPEC_LIKE_BENCHMARKS",
    "benchmark_by_name",
    "random_mix",
    "workload_mixes",
    "SystemConfig",
    "SystemSimulator",
    "MixResult",
    "PowerModel",
    "EndToEndEvaluator",
    "EndToEndPoint",
    "ProfilerKind",
    "REAPER_SPEEDUP",
    "ONLINE_PATTERNS",
    "ONLINE_ITERATIONS",
    "profiling_time_fraction",
    "profiling_power_mw",
]
