"""Hybrid profile maintenance: REAPER rounds plus ECC scrubbing in between.

The paper argues that *active* profiling (REAPER) is necessary for coverage
guarantees, and that ECC is necessary anyway to absorb the failures
profiling inevitably misses (Section 6.2.1).  The natural composition --
which the paper leaves on the table -- is to also *harvest* what the ECC
corrects between profiling rounds, AVATAR-style: every scrub that corrects
a word reveals a VRT newcomer that can be added to the mitigation mechanism
immediately instead of waiting for the next reach round.

:class:`HybridMaintainer` implements that loop.  It never weakens REAPER's
guarantees (rounds still happen on the Eq-7 cadence); scrubbing only
shortens the window during which a VRT newcomer is unprotected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..conditions import Conditions
from ..ecc.scrubbing import EccScrubber
from ..errors import ConfigurationError
from .reaper import ProfilingRound, REAPER


@dataclass(frozen=True)
class MaintenanceReport:
    """Accounting of one maintained operating span."""

    duration_seconds: float
    reaper_rounds: int
    scrub_passes: int
    cells_from_reaper: int
    cells_from_scrubbing: int
    profiling_seconds: float
    scrubbing_seconds: float

    @property
    def scrub_harvest_fraction(self) -> float:
        """Share of newly protected cells contributed by scrubbing."""
        total = self.cells_from_reaper + self.cells_from_scrubbing
        if total == 0:
            return 0.0
        return self.cells_from_scrubbing / total


class HybridMaintainer:
    """REAPER on the reprofiling cadence + ECC scrub harvesting in between.

    Parameters
    ----------
    reaper:
        Configured REAPER instance (device + mitigation + target).
    reprofile_interval_seconds:
        Cadence of full reach-profiling rounds (from Eq 7).
    scrub_interval_seconds:
        Cadence of ECC scrub passes between rounds; must be shorter than the
        reprofiling interval to be useful.
    scrubber:
        The passive scrubber used for harvesting (defaults to a single-pass
        SECDED scrubber over resident data).
    """

    def __init__(
        self,
        reaper: REAPER,
        reprofile_interval_seconds: float,
        scrub_interval_seconds: float,
        scrubber: Optional[EccScrubber] = None,
    ) -> None:
        if reprofile_interval_seconds <= 0.0 or scrub_interval_seconds <= 0.0:
            raise ConfigurationError("intervals must be positive")
        if scrub_interval_seconds >= reprofile_interval_seconds:
            raise ConfigurationError(
                "scrubbing must run more often than reprofiling to add value"
            )
        self.reaper = reaper
        self.reprofile_interval_seconds = reprofile_interval_seconds
        self.scrub_interval_seconds = scrub_interval_seconds
        self.scrubber = scrubber if scrubber is not None else EccScrubber(rounds=1)

    def run_for(self, duration_seconds: float) -> MaintenanceReport:
        """Operate for ``duration_seconds`` with the hybrid loop."""
        if duration_seconds <= 0.0:
            raise ConfigurationError("duration must be positive")
        device = self.reaper.device
        mitigation = self.reaper.mitigation
        end_time = device.clock.now + duration_seconds

        reaper_rounds = 0
        scrub_passes = 0
        cells_reaper = 0
        cells_scrub = 0
        profiling_seconds = 0.0
        scrubbing_seconds = 0.0
        next_reprofile = device.clock.now  # profile immediately at start

        while device.clock.now < end_time:
            if device.clock.now >= next_reprofile:
                round_record: ProfilingRound = self.reaper.profile_and_update()
                reaper_rounds += 1
                cells_reaper += round_record.cells_added_to_mitigation
                profiling_seconds += round_record.runtime_seconds
                next_reprofile = device.clock.now + self.reprofile_interval_seconds
                continue
            # Run normally until the next scrub or reprofile event.
            horizon = min(next_reprofile, end_time)
            gap = min(self.scrub_interval_seconds, horizon - device.clock.now)
            if gap > 0.0:
                device.wait(gap)
            if device.clock.now >= end_time:
                break
            if device.clock.now < next_reprofile:
                t0 = device.clock.now
                report = self.scrubber.run(
                    device,
                    Conditions(
                        trefi=self.reaper.target.trefi,
                        temperature=self.reaper.target.temperature,
                    ),
                )
                scrubbing_seconds += device.clock.now - t0
                scrub_passes += 1
                cells_scrub += mitigation.ingest(report.failing_cells)
        return MaintenanceReport(
            duration_seconds=duration_seconds,
            reaper_rounds=reaper_rounds,
            scrub_passes=scrub_passes,
            cells_from_reaper=cells_reaper,
            cells_from_scrubbing=cells_scrub,
            profiling_seconds=profiling_seconds,
            scrubbing_seconds=scrubbing_seconds,
        )
