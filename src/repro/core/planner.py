"""Relaxed-refresh deployment planning from SPD characterization data.

Section 6.3 of the paper describes what a system needs in order to pick
good reach conditions in the field: (1) the retention failure mitigation
mechanism in use, which bounds the tolerable false positives, and (2)
per-chip characterization data, which the paper proposes shipping in the
on-DIMM SPD.  This module implements that workflow end to end:

* estimate the failing-cell count and the reach false-positive rate for any
  (target, reach) pair directly from the SPD BER anchors;
* respect the mitigation mechanism's capacity and the ECC/UBER budget
  (Table 1 / Eq 7);
* choose the most aggressive reach whose false positives stay within the
  constraint -- the paper's Section 6.1.2 selection rule -- and report the
  resulting profiling cadence and time overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..conditions import Conditions, ReachDelta
from ..dram.spd import SPDCharacterization
from ..ecc.model import CONSUMER_UBER, EccStrength, SECDED, tolerable_bit_errors
from ..errors import ConfigurationError
from .longevity import profile_longevity_seconds
from .runtime_model import round_runtime_seconds

GIBIBIT = 1 << 30


@dataclass(frozen=True)
class PlannerConstraints:
    """What the mitigation mechanism and reliability target allow.

    Parameters
    ----------
    max_false_positive_rate:
        Largest acceptable share of false positives among profiled cells
        (e.g. row map-out wants this small; ArchShield tolerates more).
    min_coverage:
        Coverage the profiling configuration must deliver.
    mitigation_capacity_cells:
        Optional hard cap on the number of (true + false positive) cells the
        mechanism can carry (e.g. a SECRET spare pool or an ArchShield
        FaultMap).  ``None`` means unconstrained.
    target_uber:
        System reliability target (Section 6.2.2).
    """

    max_false_positive_rate: float = 0.50
    min_coverage: float = 0.99
    mitigation_capacity_cells: Optional[float] = None
    target_uber: float = CONSUMER_UBER

    def __post_init__(self) -> None:
        if not (0.0 <= self.max_false_positive_rate < 1.0):
            raise ConfigurationError("max_false_positive_rate must lie in [0, 1)")
        if not (0.0 < self.min_coverage <= 1.0):
            raise ConfigurationError("min_coverage must lie in (0, 1]")


@dataclass(frozen=True)
class DeploymentPlan:
    """A concrete relaxed-refresh operating point."""

    target: Conditions
    reach: ReachDelta
    expected_failures: float
    expected_profiled_cells: float
    expected_false_positive_rate: float
    tolerable_failures: float
    reprofile_interval_seconds: float
    round_seconds: float
    profiling_time_fraction: float
    feasible: bool
    infeasibility_reason: str = ""

    @property
    def reach_conditions(self) -> Conditions:
        return self.target.with_reach(self.reach)


class RelaxedRefreshPlanner:
    """Plans reach-profiling deployments from a chip's SPD blob.

    Parameters
    ----------
    spd:
        Per-chip characterization summary (Section 6.3's proposal).
    ecc:
        ECC strength protecting the data (drives the Eq-7 budget).
    n_patterns / reach_iterations:
        Profiling round configuration used for runtime estimates.
    reprofile_safety_factor:
        Fraction of the Eq-7 longevity actually used between rounds.
    """

    def __init__(
        self,
        spd: SPDCharacterization,
        ecc: EccStrength = SECDED,
        n_patterns: int = 6,
        reach_iterations: int = 5,
        reprofile_safety_factor: float = 0.5,
    ) -> None:
        if not (0.0 < reprofile_safety_factor <= 1.0):
            raise ConfigurationError("safety factor must lie in (0, 1]")
        self.spd = spd
        self.ecc = ecc
        self.n_patterns = n_patterns
        self.reach_iterations = reach_iterations
        self.reprofile_safety_factor = reprofile_safety_factor

    # ------------------------------------------------------------------
    # SPD-derived estimates
    # ------------------------------------------------------------------
    @property
    def capacity_bits(self) -> int:
        return int(self.spd.capacity_gigabits * GIBIBIT)

    def expected_failures(self, conditions: Conditions) -> float:
        """Failing-cell estimate at any conditions via the SPD anchors.

        Temperature scaling applies the chip's Eq-1 coefficient to the
        interpolated reference-temperature BER.
        """
        ber = self.spd.ber_at(conditions.trefi)
        scale = math.exp(self.spd.temp_coefficient * (conditions.temperature - 45.0))
        return ber * scale * self.capacity_bits

    def estimated_false_positive_rate(self, target: Conditions, reach: ReachDelta) -> float:
        """FPR estimate: the share of reach failures absent at the target."""
        at_target = self.expected_failures(target)
        at_reach = self.expected_failures(target.with_reach(reach))
        if at_reach <= 0.0:
            return 0.0
        return max(0.0, 1.0 - at_target / at_reach)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def evaluate(
        self,
        target: Conditions,
        reach: ReachDelta,
        constraints: PlannerConstraints,
    ) -> DeploymentPlan:
        """Score one (target, reach) pair against the constraints."""
        failures = self.expected_failures(target)
        profiled = self.expected_failures(target.with_reach(reach))
        fpr = self.estimated_false_positive_rate(target, reach)
        tolerable = tolerable_bit_errors(
            self.ecc, self.capacity_bits // 8, constraints.target_uber
        )
        missed = (1.0 - constraints.min_coverage) * failures
        accumulation = self.spd.accumulation_per_hour(target.trefi)
        longevity = profile_longevity_seconds(tolerable, missed, accumulation)
        interval = longevity * self.reprofile_safety_factor
        round_s = round_runtime_seconds(
            target.with_reach(reach).trefi,
            self.capacity_bits,
            n_patterns=self.n_patterns,
            n_iterations=self.reach_iterations,
        )
        if math.isinf(interval):
            fraction = 0.0
        elif interval <= 0.0:
            fraction = 1.0
        else:
            fraction = round_s / (round_s + interval)

        feasible = True
        reason = ""
        if fpr > constraints.max_false_positive_rate:
            feasible, reason = False, (
                f"estimated FPR {fpr:.1%} exceeds the mitigation limit "
                f"{constraints.max_false_positive_rate:.1%}"
            )
        elif (
            constraints.mitigation_capacity_cells is not None
            and profiled > constraints.mitigation_capacity_cells
        ):
            feasible, reason = False, (
                f"profiled cells {profiled:.0f} exceed mitigation capacity "
                f"{constraints.mitigation_capacity_cells:.0f}"
            )
        elif interval <= 0.0:
            feasible, reason = False, (
                "missed failures alone exhaust the ECC budget; raise coverage, "
                "strengthen ECC, or pick a shorter target interval"
            )
        return DeploymentPlan(
            target=target,
            reach=reach,
            expected_failures=failures,
            expected_profiled_cells=profiled,
            expected_false_positive_rate=fpr,
            tolerable_failures=tolerable,
            reprofile_interval_seconds=interval,
            round_seconds=round_s,
            profiling_time_fraction=fraction,
            feasible=feasible,
            infeasibility_reason=reason,
        )

    def plan(
        self,
        target: Conditions,
        constraints: Optional[PlannerConstraints] = None,
        candidate_deltas_s: Sequence[float] = (0.0, 0.125, 0.250, 0.375, 0.500),
    ) -> DeploymentPlan:
        """Pick the most aggressive feasible reach for a target.

        Section 6.1.2: "the system designer can feasibly select as high a
        refresh interval ... as possible that keeps the resulting amount of
        false positives tractable."  Scans the candidate deltas from most to
        least aggressive and returns the first feasible plan; if none
        qualifies, returns the least aggressive (brute-force) plan marked
        infeasible so callers can inspect the blocking constraint.
        """
        constraints = constraints if constraints is not None else PlannerConstraints()
        if not candidate_deltas_s:
            raise ConfigurationError("need at least one candidate reach delta")
        plans = [
            self.evaluate(target, ReachDelta(delta_trefi=delta), constraints)
            for delta in sorted(candidate_deltas_s, reverse=True)
        ]
        for plan in plans:
            if plan.feasible:
                return plan
        return plans[-1]
