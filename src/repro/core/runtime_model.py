"""Analytic profiling-runtime model (Eq 9 of the paper).

One round of profiling runs ``n_iterations`` iterations of ``n_patterns``
passes, each of which writes the full array, waits out the profiling
refresh interval, and reads the full array back:

    T_profile = (T_REFI + T_wr + T_rd) * N_dp * N_it

The IO terms come from the measured model in :mod:`repro.dram.timing`
(0.125 s per 16 Gbit per pass, scaled linearly -- the paper's Section 7.3.1
footnote).  The paper's two worked examples hold exactly: 32x 8Gb chips at
1024 ms with 6 patterns and 6 iterations take ~3.01 minutes; 32x 64Gb chips
take ~19.8 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.timing import pattern_io_seconds
from ..errors import ConfigurationError


@dataclass(frozen=True)
class ProfilingRoundModel:
    """Parameters of one online profiling round."""

    trefi_s: float
    capacity_bits: int
    n_patterns: int = 6
    n_iterations: int = 6

    def __post_init__(self) -> None:
        if self.trefi_s <= 0.0:
            raise ConfigurationError(f"trefi must be positive, got {self.trefi_s!r}")
        if self.n_patterns <= 0 or self.n_iterations <= 0:
            raise ConfigurationError("pattern and iteration counts must be positive")

    @property
    def io_seconds_per_pass(self) -> float:
        """T_wr + T_rd for one full-array pass."""
        return 2.0 * pattern_io_seconds(self.capacity_bits)

    @property
    def seconds_per_pass(self) -> float:
        """T_REFI + T_wr + T_rd."""
        return self.trefi_s + self.io_seconds_per_pass

    @property
    def round_seconds(self) -> float:
        """Eq 9: total runtime of one profiling round."""
        return self.seconds_per_pass * self.n_patterns * self.n_iterations


def round_runtime_seconds(
    trefi_s: float,
    capacity_bits: int,
    n_patterns: int = 6,
    n_iterations: int = 6,
) -> float:
    """Convenience wrapper around :class:`ProfilingRoundModel`."""
    return ProfilingRoundModel(
        trefi_s=trefi_s,
        capacity_bits=capacity_bits,
        n_patterns=n_patterns,
        n_iterations=n_iterations,
    ).round_seconds


def reach_speedup(
    target_trefi_s: float,
    reach_trefi_s: float,
    capacity_bits: int,
    brute_iterations: int,
    reach_iterations: int,
    n_patterns: int = 6,
) -> float:
    """Runtime speedup of reach profiling over brute force (Eq 9 ratio).

    Reach passes are individually *longer* (bigger wait per pass) but far
    fewer iterations are needed, which is where the paper's 2.5x comes from.
    """
    if reach_trefi_s < target_trefi_s:
        raise ConfigurationError("reach interval must not be below the target interval")
    brute = round_runtime_seconds(target_trefi_s, capacity_bits, n_patterns, brute_iterations)
    reach = round_runtime_seconds(reach_trefi_s, capacity_bits, n_patterns, reach_iterations)
    return brute / reach
