"""Reach profiling -- the paper's core contribution (Section 6).

The key idea: instead of profiling at the target conditions, profile at
*reach conditions* -- a longer refresh interval and/or a higher temperature
-- where every cell that can fail at the target is much more likely to fail,
so far fewer iterations suffice for high coverage.  The price is false
positives (cells that fail at the reach conditions but never at the target),
which downstream mitigation mechanisms must carry.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import obs
from ..conditions import Conditions, HEADLINE_REACH, ReachDelta
from ..errors import ConfigurationError, ProfilingError
from ..patterns import STANDARD_PATTERNS, DataPattern
from .bruteforce import BruteForceProfiler
from .device import ProfilableDevice
from .profile import RetentionProfile


class ReachProfiler:
    """Profile at reach conditions derived from the target conditions.

    Parameters
    ----------
    reach:
        Offset from the target to the profiling conditions.  The paper's
        headline configuration (+250 ms, +0 degC) is the default: it attains
        >99% coverage at <50% false positives with a 2.5x runtime speedup.
    patterns:
        Data patterns per iteration.
    iterations:
        Rounds of Algorithm 1 run *at the reach conditions*.  Because cells
        fail much more reliably there, far fewer rounds are needed than
        brute force requires at the target (the source of the speedup).
    manage_temperature:
        When the reach includes a temperature delta, raise the device
        temperature before profiling and restore it afterwards.  REAPER's
        firmware implementation assumes temperature is *not* adjustable and
        uses only the refresh-interval knob (Section 7.1); temperature-based
        reach is available for systems that do control it.
    """

    mechanism_name = "reach"

    def __init__(
        self,
        reach: ReachDelta = HEADLINE_REACH,
        patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
        iterations: int = 5,
        manage_temperature: bool = True,
        stop_after_quiet_iterations: int = 0,
    ) -> None:
        if iterations <= 0:
            raise ConfigurationError(f"iterations must be positive, got {iterations!r}")
        self.reach = reach
        self.patterns = tuple(patterns)
        self.iterations = iterations
        self.manage_temperature = manage_temperature
        self._inner = BruteForceProfiler(
            patterns=self.patterns,
            iterations=iterations,
            stop_after_quiet_iterations=stop_after_quiet_iterations,
        )
        self._inner.mechanism_name = self.mechanism_name

    def profiling_conditions(self, target: Conditions) -> Conditions:
        """The reach conditions used for a given target."""
        return target.with_reach(self.reach)

    def run(self, device: ProfilableDevice, target: Conditions) -> RetentionProfile:
        """Profile ``device`` for failures at ``target`` via reach conditions."""
        reach_conditions = self.profiling_conditions(target)
        if reach_conditions.trefi > device.max_trefi_s:
            raise ProfilingError(
                f"reach interval {reach_conditions.trefi!r}s exceeds the device's "
                f"supported maximum of {device.max_trefi_s!r}s"
            )
        original_temperature: Optional[float] = None
        if self.reach.delta_temperature > 0.0:
            if not self.manage_temperature:
                raise ProfilingError(
                    "reach includes a temperature delta but temperature management "
                    "is disabled; use a refresh-interval-only ReachDelta"
                )
            original_temperature = device.temperature_c
            device.set_temperature(reach_conditions.temperature)
        try:
            with obs.span(
                "profiler.reach",
                chip_id=getattr(device, "chip_id", None),
                delta_trefi=self.reach.delta_trefi,
                delta_temperature=self.reach.delta_temperature,
            ):
                profile = self._inner.run(device, reach_conditions, target_conditions=target)
        finally:
            if original_temperature is not None:
                device.set_temperature(original_temperature)
        return profile
