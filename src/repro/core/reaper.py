"""REAPER: the paper's end-to-end implementation of reach profiling
(Section 7.1).

REAPER is modelled as memory-controller firmware: each time the set of
retention failures must be updated it gains exclusive access to DRAM (a
full-system pause -- the paper's deliberately pessimistic assumption), runs
reach profiling, hands the discovered failing cells to whatever retention
failure mitigation mechanism the system uses (ArchShield, RAIDR, SECRET,
row map-out, ...), then releases DRAM.

For simplicity REAPER manipulates only the refresh interval, not the
temperature, exactly as the paper assumes ("we assume that temperature is
not adjustable").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .. import obs
from ..conditions import Conditions, HEADLINE_REACH, ReachDelta
from ..errors import ConfigurationError
from ..patterns import STANDARD_PATTERNS, DataPattern
from .device import ProfilableDevice
from .profile import RetentionProfile
from .reach import ReachProfiler


@dataclass(frozen=True)
class ProfilingRound:
    """Outcome of one online profiling pause."""

    index: int
    started_at: float
    runtime_seconds: float
    profile: RetentionProfile
    cells_added_to_mitigation: int


class REAPER:
    """Firmware-style reach profiling tied to a mitigation mechanism.

    Parameters
    ----------
    device:
        The DRAM the firmware controls.
    mitigation:
        Any object with an ``ingest(cells) -> int`` method returning how
        many previously unknown cells it absorbed (all mechanisms in
        :mod:`repro.mitigation` qualify).
    target:
        The relaxed operating conditions the system wants to run at.
    reach:
        Reach delta; refresh-interval-only by default (Section 7.1).
    patterns / iterations:
        Profiling configuration for each round.
    save_restore_seconds:
        Optional cost of saving DRAM contents before a round and restoring
        them afterwards (the paper's footnote 4: a naive implementation
        flushes to secondary storage; the paper's evaluations assume this
        is hidden, hence the default of 0).
    """

    def __init__(
        self,
        device: ProfilableDevice,
        mitigation,
        target: Conditions,
        reach: ReachDelta = HEADLINE_REACH,
        patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
        iterations: int = 5,
        save_restore_seconds: float = 0.0,
        stop_after_quiet_iterations: int = 0,
    ) -> None:
        if reach.delta_temperature != 0.0:
            raise ConfigurationError(
                "REAPER firmware manipulates only the refresh interval; "
                "use ReachProfiler directly for temperature-based reach"
            )
        if save_restore_seconds < 0.0:
            raise ConfigurationError("save/restore cost must be non-negative")
        self.device = device
        self.mitigation = mitigation
        self.target = target
        self.save_restore_seconds = save_restore_seconds
        self.profiler = ReachProfiler(
            reach=reach,
            patterns=patterns,
            iterations=iterations,
            manage_temperature=False,
            stop_after_quiet_iterations=stop_after_quiet_iterations,
        )
        self.rounds: List[ProfilingRound] = []
        self.total_pause_seconds = 0.0

    @property
    def reach_conditions(self) -> Conditions:
        return self.profiler.profiling_conditions(self.target)

    def profile_and_update(self) -> ProfilingRound:
        """Run one online profiling round (a full-system pause).

        Profiles at the reach conditions, pushes every discovered failing
        cell into the mitigation mechanism, and records the pause length.
        """
        started_at = self.device.clock.now
        with obs.span("reaper.round", index=len(self.rounds)):
            if self.save_restore_seconds:
                self.device.wait(self.save_restore_seconds)  # save contents
            profile = self.profiler.run(self.device, self.target)
            if self.save_restore_seconds:
                self.device.wait(self.save_restore_seconds)  # restore contents
            added = self.mitigation.ingest(profile.failing)
            pause = self.device.clock.now - started_at
        round_record = ProfilingRound(
            index=len(self.rounds),
            started_at=started_at,
            runtime_seconds=pause,
            profile=profile,
            cells_added_to_mitigation=added,
        )
        self.rounds.append(round_record)
        self.total_pause_seconds += pause
        if obs.enabled():
            obs.counter("reaper.rounds")
            obs.counter("reaper.cells_added", added)
            obs.observe("reaper.pause_sim_seconds", pause)
            obs.emit(
                "reaper.round",
                index=round_record.index,
                started_at=started_at,
                pause_sim_seconds=pause,
                cells_added=added,
                discovered=len(profile.failing),
                total_pause_sim_seconds=self.total_pause_seconds,
            )
        return round_record
