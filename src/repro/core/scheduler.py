"""Online profiling scheduling (Sections 6.2 and 7.3).

VRT makes any retention profile decay (Observation 2), so profiling must
recur.  The scheduler turns a profile-longevity estimate (Eq 7) into a
reprofiling cadence, drives a :class:`~repro.core.reaper.REAPER` instance
through simulated operating time, and accounts for the fraction of system
time spent paused for profiling -- the quantity Figure 11 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ConfigurationError
from .longevity import LongevityEstimate
from .reaper import ProfilingRound, REAPER


@dataclass(frozen=True)
class ScheduleReport:
    """Accounting of one simulated operating span."""

    duration_seconds: float
    rounds: tuple
    profiling_seconds: float
    reprofile_interval_seconds: float

    @property
    def profiling_fraction(self) -> float:
        """Share of total time spent paused for profiling (Figure 11's y-axis)."""
        if self.duration_seconds <= 0.0:
            return 0.0
        return min(self.profiling_seconds / self.duration_seconds, 1.0)


class OnlineProfilingScheduler:
    """Reprofile whenever the previous profile's validity window lapses.

    Parameters
    ----------
    reaper:
        The profiling firmware to invoke each round.
    longevity:
        Either a :class:`~repro.core.longevity.LongevityEstimate` or a plain
        number of seconds a profile remains valid.
    safety_factor:
        Fraction of the estimated longevity actually used between rounds
        (reprofiling strictly *before* the ECC budget is exhausted).
    """

    def __init__(
        self,
        reaper: REAPER,
        longevity,
        safety_factor: float = 0.5,
    ) -> None:
        if not (0.0 < safety_factor <= 1.0):
            raise ConfigurationError(f"safety_factor must lie in (0, 1], got {safety_factor!r}")
        if isinstance(longevity, LongevityEstimate):
            longevity_seconds = longevity.longevity_seconds
        else:
            longevity_seconds = float(longevity)
        if longevity_seconds <= 0.0:
            raise ConfigurationError(
                "profile longevity is non-positive: the target conditions are "
                "infeasible for this ECC budget no matter how often we reprofile"
            )
        self.reaper = reaper
        self.reprofile_interval_seconds = longevity_seconds * safety_factor

    def run_for(
        self,
        duration_seconds: float,
        on_round: Optional[Callable[[ProfilingRound], None]] = None,
    ) -> ScheduleReport:
        """Operate for ``duration_seconds``, profiling on schedule.

        The device's clock advances through both profiling pauses and the
        normal-operation gaps between them (during which VRT keeps evolving,
        so each round genuinely discovers new failures).
        """
        if duration_seconds <= 0.0:
            raise ConfigurationError("duration must be positive")
        device = self.reaper.device
        end_time = device.clock.now + duration_seconds
        rounds: List[ProfilingRound] = []
        profiling_seconds = 0.0
        # Profile immediately at the start of the span, then on cadence.
        while device.clock.now < end_time:
            round_record = self.reaper.profile_and_update()
            rounds.append(round_record)
            profiling_seconds += round_record.runtime_seconds
            if on_round is not None:
                on_round(round_record)
            remaining = end_time - device.clock.now
            if remaining <= 0.0:
                break
            device.wait(min(self.reprofile_interval_seconds, remaining))
        return ScheduleReport(
            duration_seconds=duration_seconds,
            rounds=tuple(rounds),
            profiling_seconds=profiling_seconds,
            reprofile_interval_seconds=self.reprofile_interval_seconds,
        )
