"""Fleet-batched brute-force profiling (Algorithm 1 across many chips).

:class:`FleetProfiler` runs the same write/expose/read schedule as
:class:`~repro.core.bruteforce.BruteForceProfiler` on a whole
:class:`~repro.dram.fleet.ChipFleet` at once: each command fans out to the
member chips (preserving exact per-chip clocks, traces, and RNG streams),
while the failure evaluation of every read runs as one fused numpy pass
over the stacked weak tails.  Observed-cell accumulation is likewise
batched -- one boolean "discovered" mask over the concatenated cell space
(the fleet analogue of :class:`~repro.core.device.ObservedCellAccumulator`)
plus a small per-chip overflow set for VRT episodes striking outside the
weak tail.

The per-chip failing sets it reports are byte-identical to what a
:class:`~repro.core.bruteforce.BruteForceProfiler` run over each chip
standalone would have discovered under the same schedule -- the contract
``tests/test_fleet.py`` and ``tests/test_fastpath_equivalence.py`` pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs
from ..conditions import Conditions
from ..dram.commands import Command, CommandRecord
from ..dram.fleet import ChipFleet
from ..errors import CommandSequenceError, ConfigurationError, ProfilingError
from ..patterns import STANDARD_PATTERNS, DataPattern

#: Upper bound on the bytes of read uniforms a megakernel pass holds at
#: once (across all chips).  Grids whose uniform block would exceed it are
#: processed in row blocks -- value-identical, since per-chip block draws
#: partition the stream exactly like the per-read draws they replace.
_MEGAKERNEL_UNIFORM_CAP_BYTES = 128 * 1024 * 1024

#: Block size of the draw-and-discard fallback in
#: :func:`advance_uniform_doubles` (bounds the scratch allocation).
_ADVANCE_BLOCK = 1 << 18


def advance_uniform_doubles(rng: np.random.Generator, count: int) -> None:
    """Advance ``rng`` exactly as ``count`` uniform float64 draws would.

    ``Generator.random(dtype=np.float64)`` consumes one 64-bit output of
    the underlying bit generator per double, so for bit generators that
    expose ``advance`` (PCG64, the :func:`repro.rng.derive` default) the
    seek is O(1) state arithmetic instead of O(count) generation -- the
    primitive :meth:`FleetProfiler.seek_grid` builds tile entry states
    from.  A generator holding a buffered 32-bit half-word
    (``has_uint32``) or lacking ``advance`` falls back to drawing and
    discarding in bounded blocks: same stream position, just slower.
    ``tests/test_tile_dispatch.py`` pins advance == draw equivalence.
    """
    remaining = int(count)
    if remaining <= 0:
        return
    bit_generator = rng.bit_generator
    advance = getattr(bit_generator, "advance", None)
    if advance is not None and not bit_generator.state.get("has_uint32", 0):
        advance(remaining)
        return
    while remaining:
        block = min(remaining, _ADVANCE_BLOCK)
        rng.random(block)
        remaining -= block


@dataclass(frozen=True)
class _ReadStep:
    """One planned write/expose/read cycle of a condition grid."""

    cond: int
    pattern: DataPattern
    exposure_s: float
    t_write: float
    t_wait: float
    t_read: float


@dataclass(frozen=True)
class FleetChipResult:
    """One chip's accumulated discoveries from a fleet profiling run."""

    chip_id: int
    failing: frozenset

    def __len__(self) -> int:
        return len(self.failing)


class FleetProfiler:
    """Algorithm 1, evaluated fleet-fused.

    Parameters
    ----------
    patterns:
        Data patterns tested each iteration; defaults to the paper's six
        base patterns plus inverses.
    iterations:
        Number of rounds (the campaign worker uses the campaign's
        ``iterations``).

    The adaptive knobs of the per-chip profiler (idle gaps, quiet-streak
    stopping) are deliberately absent: they would couple the schedule to
    per-chip discovery dynamics, breaking the "every chip sees the same
    command/clock trajectory" invariant fleet reads are built on.
    """

    mechanism_name = "fleet-brute-force"

    def __init__(
        self,
        patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
        iterations: int = 16,
    ) -> None:
        if iterations <= 0:
            raise ConfigurationError(f"iterations must be positive, got {iterations!r}")
        if not patterns:
            raise ConfigurationError("at least one data pattern is required")
        self.patterns = tuple(patterns)
        self.iterations = iterations

    def run(
        self, fleet: ChipFleet, conditions: Conditions
    ) -> Tuple[FleetChipResult, ...]:
        """Profile every chip in ``fleet`` at ``conditions``.

        Returns one :class:`FleetChipResult` per chip, in fleet order.
        """
        if conditions.trefi > fleet.max_trefi_s:
            raise ProfilingError(
                f"profiling interval {conditions.trefi!r}s exceeds the fleet's "
                f"supported maximum of {fleet.max_trefi_s!r}s"
            )
        population = fleet.population
        discovered = np.zeros(len(population), dtype=bool)
        extras: List[Set[int]] = [set() for _ in fleet.chips]
        with obs.span(
            "profiler.fleet_run",
            mechanism=self.mechanism_name,
            chips=len(fleet),
            trefi=conditions.trefi,
        ):
            for iteration in range(self.iterations):
                for pattern in self.patterns:
                    fleet.write_pattern(pattern)
                    fleet.disable_refresh()
                    fleet.wait(conditions.trefi)
                    fleet.enable_refresh()
                    mask, vrt = fleet.read_failures()
                    discovered |= mask
                    for chip_index, cells in vrt:
                        self._fold_vrt(
                            population, discovered, extras, chip_index, cells
                        )
                if obs.enabled():
                    obs.counter(
                        "profiler.iterations",
                        len(fleet),
                        mechanism=self.mechanism_name,
                    )
                    obs.emit(
                        "profiler.fleet_iteration",
                        mechanism=self.mechanism_name,
                        chips=len(fleet),
                        iteration=iteration,
                        discovered=int(np.count_nonzero(discovered))
                        + sum(len(e) for e in extras),
                    )
        results = []
        for i, chip in enumerate(fleet.chips):
            start, end = population.segment(i)
            in_space = population.member_indices(i)[discovered[start:end]]
            failing = frozenset(in_space.tolist()) | frozenset(extras[i])
            results.append(FleetChipResult(chip_id=chip.chip_id, failing=failing))
        return tuple(results)

    def run_grid(
        self,
        fleet: ChipFleet,
        conditions_grid: Sequence[Conditions],
        megakernel: bool = True,
        tile: Optional[Tuple[int, int]] = None,
    ) -> Tuple[Tuple[FleetChipResult, ...], ...]:
        """Profile every chip at every condition of a grid, fused.

        Returns one result tuple per grid entry, in grid order -- each
        byte-identical (results, traces, clocks, generator states, chip
        state) to ``tuple(self.run(fleet, c) for c in conditions_grid)``.

        With ``megakernel=True``, the whole grid collapses into one pass:
        the command schedule is replayed once on scalars (every chip
        traverses the identical clock trajectory, so the per-step times,
        exposures, and trace records are shared), DPD excitation draws
        run only where the sequential path actually draws, VRT arrival
        checks batch into one vectorized Poisson per chip (falling back
        to the exact interleaved replay for the rare chip that draws an
        episode), and every read's uniforms and probability rows stack
        into per-chip block compares.  Each transformation is draw-for-draw
        equivalent to the sequential walk, which is what keeps the output
        bit-equal.

        With observability enabled, the fused pass records phase-level
        ``kernel.*`` spans (schedule replay, DPD excitation, VRT, read
        compare, commit) -- wall-clock observation only, so fused results
        stay bit-equal with instrumentation on or off.  Per-*command*
        telemetry needs the sequential command fan-out: pass
        ``megakernel=False`` to trade the fused speed for the exact
        per-command counter/event stream.

        The only observable deviation is error *timing*: every condition's
        interval is validated up front, so an invalid grid entry raises
        before any command executes instead of after the preceding entries
        ran (no partial state, same exception and message).

        ``tile=(start, stop)`` restricts evaluation to the grid's
        half-open condition slice ``[start, stop)``: conditions before
        ``start`` are *seeked* past (:meth:`seek_grid` -- the exact
        entry-state replay, no read evaluation), conditions in the slice
        are evaluated, and conditions at ``stop`` and beyond are left
        untouched.  Returned results cover only the slice, in slice
        order, and each is bit-equal to the matching entry of a full
        ``run_grid`` over the whole grid.
        """
        conditions_grid = tuple(conditions_grid)
        for conditions in conditions_grid:
            if conditions.trefi > fleet.max_trefi_s:
                raise ProfilingError(
                    f"profiling interval {conditions.trefi!r}s exceeds the fleet's "
                    f"supported maximum of {fleet.max_trefi_s!r}s"
                )
        if tile is not None:
            start, stop = int(tile[0]), int(tile[1])
            if not 0 <= start <= stop <= len(conditions_grid):
                raise ConfigurationError(
                    f"tile {tile!r} out of range for a "
                    f"{len(conditions_grid)}-condition grid"
                )
            if start:
                self.seek_grid(fleet, conditions_grid[:start])
            conditions_grid = conditions_grid[start:stop]
        if not conditions_grid:
            return ()
        if not megakernel:
            return tuple(self.run(fleet, c) for c in conditions_grid)
        return self._run_grid_fused(fleet, conditions_grid)

    def _replay_schedule(
        self, fleet: ChipFleet, conditions_grid: Tuple[Conditions, ...], t: float
    ) -> Tuple[List[_ReadStep], List[CommandRecord], List[float], float]:
        """Scalar clock replay of a condition grid starting at time ``t``.

        Returns ``(steps, records, vrt_times, t_final)`` -- every per-step
        clock value, exposure, and shared trace record the lockstep
        command methods would have produced, computed with the identical
        floating-point expressions in the identical order (bit-equal).
        Shared by the fused evaluator and :meth:`seek_grid`, which is what
        guarantees a seek lands on exactly the clock trajectory the
        evaluated prefix would have left behind.
        """
        io = fleet._io_seconds
        max_trefi = fleet._max_trefi_s
        steps: List[_ReadStep] = []
        records: List[CommandRecord] = []
        vrt_times: List[float] = []
        for ci, conditions in enumerate(conditions_grid):
            trefi = conditions.trefi
            for _ in range(self.iterations):
                for pattern in self.patterns:
                    t = t + io
                    t_write = t
                    t = t + trefi
                    t_wait = t
                    exposure = t_wait - t_write
                    # Tolerate float accumulation error at the exact boundary.
                    if exposure > max_trefi * (1.0 + 1e-9):
                        raise ConfigurationError(
                            f"exposure {exposure:.3f}s exceeds max_trefi_s={max_trefi!r}; "
                            "construct the chip with a larger max_trefi_s"
                        )
                    t = t + io
                    t_read = t
                    steps.append(
                        _ReadStep(
                            cond=ci,
                            pattern=pattern,
                            exposure_s=exposure,
                            t_write=t_write,
                            t_wait=t_wait,
                            t_read=t_read,
                        )
                    )
                    records.append(
                        CommandRecord(
                            time=t_write,
                            command=Command.WRITE_PATTERN,
                            detail=pattern.key,
                        )
                    )
                    records.append(
                        CommandRecord(time=t_write, command=Command.REFRESH_DISABLE)
                    )
                    records.append(
                        CommandRecord(
                            time=t_wait, command=Command.WAIT, detail=f"{trefi:.6f}s"
                        )
                    )
                    records.append(
                        CommandRecord(time=t_wait, command=Command.REFRESH_ENABLE)
                    )
                    records.append(
                        CommandRecord(
                            time=t_read,
                            command=Command.READ_COMPARE,
                            detail=f"exposure={exposure:.6f}s",
                        )
                    )
                    vrt_times.extend((t_write, t_wait, t_read))
        return steps, records, vrt_times, t

    def seek_grid(
        self, fleet: ChipFleet, conditions_grid: Sequence[Conditions]
    ) -> None:
        """Advance every chip's state *past* ``conditions_grid`` without
        evaluating a single read.

        After the call, each chip's clock, trace, refresh state, VRT
        process, and every RNG stream sit exactly where a full
        :meth:`run_grid` (or the sequential per-condition walk -- both are
        draw-for-draw identical) over the grid would have left them, so a
        subsequent ``run_grid`` over later conditions produces bit-equal
        results.  This is the tile entry-state seek: a condition-tile
        worker replays its prefix in O(schedule) scalar work plus O(1)
        RNG stream arithmetic per chip, instead of re-running the
        prefix's numpy evaluation.

        Draw accounting per chip over the prefix:

        * **read stream** -- ``steps x tail`` uniforms, advanced in one
          :func:`advance_uniform_doubles` call;
        * **DPD stream** -- deterministic patterns draw only on their
          first-ever excitation (the real ``excite`` call here also fills
          the model's cache, so the tile's evaluated conditions reuse it
          without redrawing); standard stochastic writes cost exactly
          ``4 x tail`` doubles each and collapse into one advance; exotic
          stochastic patterns replay ``excite`` verbatim;
        * **VRT stream** -- the same vectorized arrival check as the
          fused pass (scalar replay fallback on an arrival), minus the
          RNG-pure failing-cell queries.

        The last write's pattern/alignment arrays are deliberately *not*
        reconstructed: they are write-only state, unconditionally
        overwritten by the next condition's first write before any read
        can observe them.
        """
        conditions_grid = tuple(conditions_grid)
        for conditions in conditions_grid:
            if conditions.trefi > fleet.max_trefi_s:
                raise ProfilingError(
                    f"profiling interval {conditions.trefi!r}s exceeds the fleet's "
                    f"supported maximum of {fleet.max_trefi_s!r}s"
                )
        if not conditions_grid:
            return
        chips = fleet.chips
        population = fleet.population
        t = fleet._now_all()
        for chip in chips:
            if not chip._refresh_enabled:
                raise CommandSequenceError("refresh is already disabled")
        with obs.span(
            "kernel.tile.seek", chips=len(chips), conditions=len(conditions_grid)
        ):
            steps, records, vrt_times, t_final = self._replay_schedule(
                fleet, conditions_grid, t
            )

            # DPD stream: walk the writes in order so cached/advanced/
            # replayed draws interleave exactly like the evaluated pass.
            dpds = tuple(chip.population.dpd for chip in chips)
            batch_ok = all(d.models_orientation for d in dpds)
            cache = dpds[0]._cached
            pending_writes = 0

            def flush() -> None:
                nonlocal pending_writes
                if pending_writes:
                    for dpd in dpds:
                        advance_uniform_doubles(
                            dpd._rng, 4 * dpd.n_cells * pending_writes
                        )
                    pending_writes = 0

            for step in steps:
                pattern = step.pattern
                if pattern.stochastic:
                    if (
                        batch_ok
                        and pattern.name == "random"
                        and pattern.alignment_beta == (2.0, 2.0)
                    ):
                        pending_writes += 1
                    else:
                        flush()
                        for dpd in dpds:
                            dpd.excite(pattern)
                elif pattern.key not in cache:
                    flush()
                    for dpd in dpds:
                        dpd.excite(pattern)
            flush()

            # VRT: the batched arrival check consumes the stream exactly
            # like the scalar walk; a chip that draws an arrival replays
            # the schedule scalar (queries are RNG-pure -- skipped).
            schedule = np.asarray(vrt_times, dtype=np.float64)
            for chip in chips:
                if not chip.vrt.advance_schedule(schedule, chip._temperature_c):
                    for step in steps:
                        chip.vrt.advance_to(step.t_write, chip._temperature_c)
                        chip.vrt.advance_to(step.t_wait, chip._temperature_c)
                        chip.vrt.advance_to(step.t_read, chip._temperature_c)

            # Read streams + per-chip end state (clock, trace, refresh).
            n_rows = len(steps)
            for i, chip in enumerate(chips):
                start, end = population.segment(i)
                advance_uniform_doubles(chip.read_rng, n_rows * (end - start))
                chip.clock._now = t_final
                chip.trace.records.extend(records)
                chip._refresh_enabled = True
                chip._disable_time = None
                chip._frozen_exposure = 0.0

    def _run_grid_fused(
        self, fleet: ChipFleet, conditions_grid: Tuple[Conditions, ...]
    ) -> Tuple[Tuple[FleetChipResult, ...], ...]:
        chips = fleet.chips
        population = fleet.population
        n_chips = len(chips)
        n_total = len(population)
        io = fleet._io_seconds
        max_trefi = fleet._max_trefi_s

        # Entry invariants the sequential walk would enforce on its first
        # commands (same exceptions, before any state changes).
        t = fleet._now_all()
        for chip in chips:
            if not chip._refresh_enabled:
                raise CommandSequenceError("refresh is already disabled")

        # ------------------------------------------------------------------
        # Scalar schedule replay: one pass computes every step's clock
        # values, exposure, and the five shared trace records -- exactly
        # the floating-point expressions the lockstep command methods
        # evaluate, in the same order, so every value is bit-equal.
        # ------------------------------------------------------------------
        with obs.span("kernel.schedule_replay", chips=n_chips, conditions=len(conditions_grid)):
            steps, records, vrt_times, t_final = self._replay_schedule(
                fleet, conditions_grid, t
            )
        n_rows = len(steps)

        # ------------------------------------------------------------------
        # DPD excitation replay.  The sequential walk excites every chip at
        # every write, but a deterministic pattern only *draws* on its first
        # excitation (later calls return the cached arrays untouched), so
        # exciting once per (chip, deterministic pattern) and reusing the
        # returned arrays consumes each chip's DPD stream identically --
        # including the object identities the fleet caches pin on.
        # Stochastic patterns redraw every write, exactly like the walk.
        # ------------------------------------------------------------------
        with obs.span("kernel.dpd_excite", chips=n_chips, rows=n_rows):
            align_rows: List[object] = [None] * n_rows
            stress_rows: List[object] = [None] * n_rows
            det_cache: Dict[str, Tuple[tuple, tuple]] = {}
            segments = [population.segment(i) for i in range(n_chips)]
            spaces = [population.member_indices(i) for i in range(n_chips)]
            dpds = tuple(chip.population.dpd for chip in chips)
            excites = tuple(d.excite for d in dpds)
            # The standard random pattern family batches across the fleet: one
            # raw-uniform draw per chip (``random(4n)`` fills the identical
            # doubles the per-chip ``(3, n)`` median draw plus ``(n,)`` bit
            # draw would), then the column median, cap multiply, bit threshold,
            # and orientation compare run once over the stacked tails --
            # elementwise per cell, so each chip's slice is bit-equal to its
            # own excite() call.  Exotic stochastic patterns (non-Beta(2,2) or
            # non-random families) keep the per-chip path.
            batch_ok = all(d.models_orientation for d in dpds)
            if batch_ok:
                caps_cells = np.repeat(
                    [d._random_cap for d in dpds],
                    [end - start for start, end in segments],
                )
                orientation_cells = np.concatenate([d._orientation for d in dpds])
                raw_bufs = [
                    np.empty(4 * (end - start)) for start, end in segments
                ]
                u3 = np.empty((3, n_total), dtype=np.float64)
                bits_u = np.empty(n_total, dtype=np.float64)
                data_bits = np.empty(n_total, dtype=bool)
            batched_last: Dict[str, int] = {}
            for r, step in enumerate(steps):
                pattern = step.pattern
                if pattern.stochastic:
                    if (
                        batch_ok
                        and pattern.name == "random"
                        and pattern.alignment_beta == (2.0, 2.0)
                    ):
                        for i in range(n_chips):
                            start, end = segments[i]
                            n = end - start
                            raw = dpds[i].excite_random_raw(out=raw_bufs[i])
                            u3[:, start:end] = raw[: 3 * n].reshape(3, n)
                            bits_u[start:end] = raw[3 * n :]
                        u3.sort(axis=0)
                        draw = np.multiply(u3[1], caps_cells)
                        np.less(bits_u, 0.5, out=data_bits)
                        mask = np.empty(n_total, dtype=np.float64)
                        if pattern.inverted:
                            np.not_equal(data_bits, orientation_cells, out=mask)
                        else:
                            np.equal(data_bits, orientation_cells, out=mask)
                        align_rows[r] = draw
                        stress_rows[r] = mask
                        batched_last[pattern.key] = r
                    else:
                        align_rows[r], stress_rows[r] = zip(
                            *[excite(pattern) for excite in excites]
                        )
                else:
                    entry = det_cache.get(pattern.key)
                    if entry is None:
                        entry = tuple(zip(*[excite(pattern) for excite in excites]))
                        det_cache[pattern.key] = entry
                    align_rows[r], stress_rows[r] = entry

        # ------------------------------------------------------------------
        # VRT: one vectorized arrival check per chip covers the whole grid.
        # Chips with no arrival (the overwhelming majority) still answer
        # read queries against any pre-existing episodes -- post-hoc is
        # exact there because the episode set is constant over the grid.
        # A chip that would draw an episode replays the schedule with the
        # sequential advance/query interleaving, bit for bit.
        # ------------------------------------------------------------------
        with obs.span("kernel.vrt", chips=n_chips):
            schedule = np.asarray(vrt_times, dtype=np.float64)
            vrt_hits: Dict[int, List[Tuple[int, np.ndarray]]] = {}
            for i, chip in enumerate(chips):
                if chip.vrt.advance_schedule(schedule, chip._temperature_c):
                    if chip.vrt.episode_count:
                        for r, step in enumerate(steps):
                            cells = chip.vrt.failing_cells(step.t_read, step.exposure_s)
                            if len(cells):
                                vrt_hits.setdefault(r, []).append((i, cells))
                else:
                    for r, step in enumerate(steps):
                        chip.vrt.advance_to(step.t_write, chip._temperature_c)
                        chip.vrt.advance_to(step.t_wait, chip._temperature_c)
                        chip.vrt.advance_to(step.t_read, chip._temperature_c)
                        cells = chip.vrt.failing_cells(step.t_read, step.exposure_s)
                        if len(cells):
                            vrt_hits.setdefault(r, []).append((i, cells))

        # ------------------------------------------------------------------
        # Fused read evaluation, blocked to cap uniform memory.  Per block:
        # one (rows x tail) uniform draw per chip (the block draw partitions
        # each read stream exactly like the per-read draws), one stacked
        # probability matrix computed pattern-by-pattern (all of a pattern's
        # exposures through a single ndtr), one compare + per-condition
        # any() reduction per chip.  Stochastic rows gather their
        # chip-ordered uniforms out of the same blocks and go through the
        # fleet's Chernoff-banded sampler unchanged.
        # ------------------------------------------------------------------
        with obs.span("kernel.read_compare", chips=n_chips, rows=n_rows):
            scales = tuple(
                float(chip.population.retention_scale(chip._temperature_c))
                for chip in chips
            )
            rows_per_block = max(
                1, int(_MEGAKERNEL_UNIFORM_CAP_BYTES // max(1, n_total * 8))
            )
            discovered = [np.zeros(n_total, dtype=bool) for _ in conditions_grid]
            for b0 in range(0, n_rows, rows_per_block):
                b1 = min(b0 + rows_per_block, n_rows)
                nb = b1 - b0
                block = steps[b0:b1]
                # Column-major: each chip's segment of the uniform matrix (and
                # the matching probability columns) is then one contiguous run,
                # so the per-chip draws land with plain memcpys instead of
                # row-strided scatter writes, and the any(axis=0) reduction
                # walks contiguous columns.  Values are order-independent.
                P = np.empty((nb, n_total), dtype=np.float64, order="F")
                stoch_local: List[int] = []
                det_local: Dict[str, List[int]] = {}
                for j, step in enumerate(block):
                    if step.pattern.stochastic:
                        stoch_local.append(j)
                        P[j] = 0.0
                    elif step.exposure_s > 0.0:
                        det_local.setdefault(step.pattern.key, []).append(j)
                    else:
                        # Zero exposures keep an all-zero row: the sequential
                        # path short-circuits to "no failures" there (while
                        # still consuming the uniforms, as the block draw does).
                        P[j] = 0.0
                has_det = bool(det_local)
                for key, rows in det_local.items():
                    # All of a deterministic pattern's rows share one cached
                    # alignment/stress draw, so the whole group stacks into one
                    # ndtr pass (row-for-row bit-equal to deterministic_p).
                    aligns, stresses = det_cache[key]
                    P[np.asarray(rows, dtype=np.intp)] = population.deterministic_p_grid(
                        [block[j].exposure_s for j in rows],
                        scales,
                        key,
                        aligns,
                        stresses,
                    )
                # One chip-ordered uniform matrix covers the block: each chip's
                # (rows x tail) draw partitions its read stream exactly like the
                # per-read draws, and stacking the segments side by side lets
                # the deterministic compare and the stochastic row gathers run
                # on views instead of per-chip loops.
                u_all = np.empty((nb, n_total), dtype=np.float64, order="F")
                for i, chip in enumerate(chips):
                    start, end = segments[i]
                    if end > start:
                        u_all[:, start:end] = chip.read_rng.random((nb, end - start))
                if has_det:
                    cmp = u_all < P
                    # Rows arrive grouped by condition (the schedule walks the
                    # grid in order), so each condition owns a contiguous row
                    # range.  Stochastic and zero-exposure rows keep their
                    # all-zero P row -- they contribute nothing to the compare
                    # -- which lets the reduction run on plain slices.
                    lo = 0
                    for hi in range(1, nb + 1):
                        if hi == nb or block[hi].cond != block[lo].cond:
                            discovered[block[lo].cond] |= cmp[lo:hi].any(axis=0)
                            lo = hi
                for j in stoch_local:
                    step = block[j]
                    if step.exposure_s == 0.0:
                        continue
                    mask = population._sample_banded(
                        step.exposure_s,
                        scales,
                        align_rows[b0 + j],
                        stress_rows[b0 + j],
                        (),
                        # Rows of the column-major matrix are strided; the
                        # banded sampler runs several elementwise passes over
                        # u, so one contiguous copy up front is cheaper.
                        u=np.ascontiguousarray(u_all[j]),
                    )
                    discovered[step.cond] |= mask

        # Fold VRT hits into their step's condition.
        extras: List[List[Set[int]]] = [
            [set() for _ in chips] for _ in conditions_grid
        ]
        for r, hits in vrt_hits.items():
            ci = steps[r].cond
            for chip_index, cells in hits:
                self._fold_vrt(
                    population, discovered[ci], extras[ci], chip_index, cells
                )

        # ------------------------------------------------------------------
        # Commit per-chip end state: exactly what the sequential walk leaves
        # behind -- clock at the final read, the shared records appended in
        # order, the last write's pattern/DPD arrays, refresh re-enabled
        # with the exposure restarted by the final read's restore.
        # ------------------------------------------------------------------
        # Batched rows bypassed excite()'s cache stores; replay the final
        # store per stochastic pattern (earlier writes' entries are
        # overwritten by later ones in the sequential walk, so only the
        # last row per key is observable).
        with obs.span("kernel.commit", chips=n_chips):
            for key, r in batched_last.items():
                pattern = steps[r].pattern
                draw = align_rows[r]
                mask = stress_rows[r]
                for i in range(n_chips):
                    start, end = segments[i]
                    dpds[i].commit_random_write(
                        pattern, draw[start:end], mask[start:end]
                    )

            last = steps[-1]
            last_aligns = align_rows[-1]
            last_stresses = stress_rows[-1]
            last_stacked = isinstance(last_aligns, np.ndarray)
            for i, chip in enumerate(chips):
                chip.clock._now = t_final
                chip.trace.records.extend(records)
                chip._pattern = last.pattern
                if last_stacked:
                    start, end = segments[i]
                    chip._alignment = last_aligns[start:end]
                    chip._stressed = last_stresses[start:end]
                else:
                    chip._alignment = last_aligns[i]
                    chip._stressed = last_stresses[i]
                chip._refresh_enabled = True
                chip._disable_time = None
                chip._frozen_exposure = 0.0

        out = []
        chip_ids = [chip.chip_id for chip in chips]
        empty = frozenset()
        for ci in range(len(conditions_grid)):
            mask = discovered[ci]
            cond_extras = extras[ci]
            if not mask.any() and not any(cond_extras):
                # Nothing discovered at this condition (typical for the
                # short-interval end of a sweep): skip the per-chip
                # boolean indexing entirely.
                out.append(
                    tuple(
                        FleetChipResult(chip_id=cid, failing=empty)
                        for cid in chip_ids
                    )
                )
                continue
            results = []
            for i in range(n_chips):
                start, end = segments[i]
                in_space = spaces[i][mask[start:end]]
                failing = frozenset(in_space.tolist()) | frozenset(cond_extras[i])
                results.append(
                    FleetChipResult(chip_id=chip_ids[i], failing=failing)
                )
            out.append(tuple(results))
        return tuple(out)

    @staticmethod
    def _fold_vrt(
        population,
        discovered: np.ndarray,
        extras: List[Set[int]],
        chip_index: int,
        cells: np.ndarray,
    ) -> None:
        """Fold one chip's VRT failing cells into the fleet bookkeeping.

        Cells inside the chip's weak tail mark the shared mask (they are
        indistinguishable from static discoveries there, matching
        :class:`~repro.core.device.ObservedCellAccumulator`); the rest land
        in the chip's overflow set.
        """
        space = population.member_indices(chip_index)
        start, _end = population.segment(chip_index)
        if space.size:
            pos = np.searchsorted(space, cells)
            in_space = space[np.minimum(pos, space.size - 1)] == cells
            discovered[start + pos[in_space]] = True
            outside = cells[~in_space]
        else:
            outside = cells
        if outside.size:
            extras[chip_index].update(int(c) for c in outside)
