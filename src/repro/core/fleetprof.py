"""Fleet-batched brute-force profiling (Algorithm 1 across many chips).

:class:`FleetProfiler` runs the same write/expose/read schedule as
:class:`~repro.core.bruteforce.BruteForceProfiler` on a whole
:class:`~repro.dram.fleet.ChipFleet` at once: each command fans out to the
member chips (preserving exact per-chip clocks, traces, and RNG streams),
while the failure evaluation of every read runs as one fused numpy pass
over the stacked weak tails.  Observed-cell accumulation is likewise
batched -- one boolean "discovered" mask over the concatenated cell space
(the fleet analogue of :class:`~repro.core.device.ObservedCellAccumulator`)
plus a small per-chip overflow set for VRT episodes striking outside the
weak tail.

The per-chip failing sets it reports are byte-identical to what a
:class:`~repro.core.bruteforce.BruteForceProfiler` run over each chip
standalone would have discovered under the same schedule -- the contract
``tests/test_fleet.py`` and ``tests/test_fastpath_equivalence.py`` pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from .. import obs
from ..conditions import Conditions
from ..dram.fleet import ChipFleet
from ..errors import ConfigurationError, ProfilingError
from ..patterns import STANDARD_PATTERNS, DataPattern


@dataclass(frozen=True)
class FleetChipResult:
    """One chip's accumulated discoveries from a fleet profiling run."""

    chip_id: int
    failing: frozenset

    def __len__(self) -> int:
        return len(self.failing)


class FleetProfiler:
    """Algorithm 1, evaluated fleet-fused.

    Parameters
    ----------
    patterns:
        Data patterns tested each iteration; defaults to the paper's six
        base patterns plus inverses.
    iterations:
        Number of rounds (the campaign worker uses the campaign's
        ``iterations``).

    The adaptive knobs of the per-chip profiler (idle gaps, quiet-streak
    stopping) are deliberately absent: they would couple the schedule to
    per-chip discovery dynamics, breaking the "every chip sees the same
    command/clock trajectory" invariant fleet reads are built on.
    """

    mechanism_name = "fleet-brute-force"

    def __init__(
        self,
        patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
        iterations: int = 16,
    ) -> None:
        if iterations <= 0:
            raise ConfigurationError(f"iterations must be positive, got {iterations!r}")
        if not patterns:
            raise ConfigurationError("at least one data pattern is required")
        self.patterns = tuple(patterns)
        self.iterations = iterations

    def run(
        self, fleet: ChipFleet, conditions: Conditions
    ) -> Tuple[FleetChipResult, ...]:
        """Profile every chip in ``fleet`` at ``conditions``.

        Returns one :class:`FleetChipResult` per chip, in fleet order.
        """
        if conditions.trefi > fleet.max_trefi_s:
            raise ProfilingError(
                f"profiling interval {conditions.trefi!r}s exceeds the fleet's "
                f"supported maximum of {fleet.max_trefi_s!r}s"
            )
        population = fleet.population
        discovered = np.zeros(len(population), dtype=bool)
        extras: List[Set[int]] = [set() for _ in fleet.chips]
        with obs.span(
            "profiler.fleet_run",
            mechanism=self.mechanism_name,
            chips=len(fleet),
            trefi=conditions.trefi,
        ):
            for iteration in range(self.iterations):
                for pattern in self.patterns:
                    fleet.write_pattern(pattern)
                    fleet.disable_refresh()
                    fleet.wait(conditions.trefi)
                    fleet.enable_refresh()
                    mask, vrt = fleet.read_failures()
                    discovered |= mask
                    for chip_index, cells in vrt:
                        self._fold_vrt(
                            population, discovered, extras, chip_index, cells
                        )
                if obs.enabled():
                    obs.counter(
                        "profiler.iterations",
                        len(fleet),
                        mechanism=self.mechanism_name,
                    )
                    obs.emit(
                        "profiler.fleet_iteration",
                        mechanism=self.mechanism_name,
                        chips=len(fleet),
                        iteration=iteration,
                        discovered=int(np.count_nonzero(discovered))
                        + sum(len(e) for e in extras),
                    )
        results = []
        for i, chip in enumerate(fleet.chips):
            start, end = population.segment(i)
            in_space = population.member_indices(i)[discovered[start:end]]
            failing = frozenset(in_space.tolist()) | frozenset(extras[i])
            results.append(FleetChipResult(chip_id=chip.chip_id, failing=failing))
        return tuple(results)

    @staticmethod
    def _fold_vrt(
        population,
        discovered: np.ndarray,
        extras: List[Set[int]],
        chip_index: int,
        cells: np.ndarray,
    ) -> None:
        """Fold one chip's VRT failing cells into the fleet bookkeeping.

        Cells inside the chip's weak tail mark the shared mask (they are
        indistinguishable from static discoveries there, matching
        :class:`~repro.core.device.ObservedCellAccumulator`); the rest land
        in the chip's overflow set.
        """
        space = population.member_indices(chip_index)
        start, _end = population.segment(chip_index)
        if space.size:
            pos = np.searchsorted(space, cells)
            in_space = space[np.minimum(pos, space.size - 1)] == cells
            discovered[start + pos[in_space]] = True
            outside = cells[~in_space]
        else:
            outside = cells
        if outside.size:
            extras[chip_index].update(int(c) for c in outside)
