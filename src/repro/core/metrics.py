"""The paper's three key profiling metrics: coverage, false positive rate,
and runtime (Section 1 / Section 6.1).

* **Coverage** -- fraction of the cells that actually fail at the target
  conditions that the profiler discovered.
* **False positive rate** -- fraction of the profiler's discoveries that
  never fail at the target conditions.
* **Runtime** -- simulated wall time the profiling run consumed.

Truth sets come either from a device oracle (simulator ground truth) or,
following the paper's own empirical methodology, from an exhaustive
brute-force profile at the target conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, List, Optional, Set, Union

from ..errors import ConfigurationError
from .profile import RetentionProfile

CellSet = Union[FrozenSet[Hashable], Set[Hashable]]


def _as_set(value) -> FrozenSet[Hashable]:
    if isinstance(value, RetentionProfile):
        return value.failing
    if isinstance(value, (set, frozenset)):
        return frozenset(value)
    return frozenset(
        tuple(int(x) for x in item) if isinstance(item, tuple) else int(item)
        for item in value
    )


def coverage(found, truth) -> float:
    """|found ∩ truth| / |truth|; defined as 1.0 for an empty truth set."""
    found_set, truth_set = _as_set(found), _as_set(truth)
    if not truth_set:
        return 1.0
    return len(found_set & truth_set) / len(truth_set)


def false_positive_rate(found, truth) -> float:
    """|found \\ truth| / |found|; defined as 0.0 for an empty found set."""
    found_set, truth_set = _as_set(found), _as_set(truth)
    if not found_set:
        return 0.0
    return len(found_set - truth_set) / len(found_set)


@dataclass(frozen=True)
class ProfileEvaluation:
    """A profile scored against a truth set on all three key metrics."""

    coverage: float
    false_positive_rate: float
    runtime_seconds: float
    n_found: int
    n_truth: int
    n_false_positives: int

    def __str__(self) -> str:
        return (
            f"coverage={self.coverage:.4f} fpr={self.false_positive_rate:.4f} "
            f"runtime={self.runtime_seconds:.2f}s found={self.n_found} truth={self.n_truth}"
        )


def evaluate(profile, truth, runtime_seconds: Optional[float] = None) -> ProfileEvaluation:
    """Score a profile (or raw cell set) against a truth set."""
    found_set, truth_set = _as_set(profile), _as_set(truth)
    if runtime_seconds is None:
        runtime_seconds = profile.runtime_seconds if isinstance(profile, RetentionProfile) else 0.0
    return ProfileEvaluation(
        coverage=coverage(found_set, truth_set),
        false_positive_rate=false_positive_rate(found_set, truth_set),
        runtime_seconds=runtime_seconds,
        n_found=len(found_set),
        n_truth=len(truth_set),
        n_false_positives=len(found_set - truth_set),
    )


def coverage_curve(profile: RetentionProfile, truth) -> List[float]:
    """Coverage of ``truth`` after each recorded (iteration, pattern) pass."""
    truth_set = _as_set(truth)
    if not truth_set:
        return [1.0] * len(profile.records)
    covered: set = set()
    curve: List[float] = []
    for record in profile.records:
        covered |= record.new_cells & truth_set
        curve.append(len(covered) / len(truth_set))
    return curve


def iterations_to_coverage(
    profile: RetentionProfile,
    truth,
    threshold: float,
) -> Optional[int]:
    """Smallest number of *iterations* whose passes reach the coverage threshold.

    Returns ``None`` when the profile never reaches it.  An iteration counts
    as complete once all of its patterns have been tested, matching the
    runtime accounting of Eq 9.
    """
    if not (0.0 < threshold <= 1.0):
        raise ConfigurationError(f"threshold must lie in (0, 1], got {threshold!r}")
    truth_set = _as_set(truth)
    if not truth_set:
        return 1
    covered: set = set()
    by_iteration: dict = {}
    for record in profile.records:
        by_iteration.setdefault(record.iteration, []).append(record)
    for iteration in sorted(by_iteration):
        for record in by_iteration[iteration]:
            covered |= record.new_cells & truth_set
        if len(covered) / len(truth_set) >= threshold:
            return iteration + 1
    return None
