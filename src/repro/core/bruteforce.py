"""Brute-force retention failure profiling (Algorithm 1 of the paper).

The state-of-the-art baseline: for each of ``iterations`` rounds, write each
data pattern into DRAM, disable refresh for the target refresh interval,
re-enable refresh, and read back to collect retention failures.  The
profiler faithfully pays all the simulated costs a real run would: pattern
IO time per pass and the full refresh-interval wait per pattern.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import obs
from ..clock import ClockStopwatch
from ..conditions import Conditions
from ..errors import ConfigurationError, ProfilingError
from ..patterns import STANDARD_PATTERNS, DataPattern
from .device import ObservedCellAccumulator, ProfilableDevice
from .profile import IterationRecord, RetentionProfile


class BruteForceProfiler:
    """Algorithm 1: iterate (write pattern, wait t_REFI, check errors).

    Parameters
    ----------
    patterns:
        Data patterns tested each iteration; defaults to the paper's six
        base patterns plus inverses.
    iterations:
        Number of rounds; the paper's tradeoff analysis uses 16.
    idle_between_iterations_s:
        Optional idle gap inserted strictly *between* consecutive
        iterations, modelling test infrastructure overhead between rounds
        (used by the six-day characterization campaigns, where 800
        iterations span six days).  An N-iteration run charges exactly
        N - 1 gaps: no gap trails the final iteration or a quiet-streak
        stop, so ``runtime_seconds`` matches the Eq-9 accounting.
    stop_after_quiet_iterations:
        Adaptive early stopping: end the run once this many consecutive
        iterations discover no new failing cells (0 disables).  A cheap
        runtime optimization for online profiling -- most discoveries land
        in the first iterations, so a quiet streak signals convergence.
    """

    mechanism_name = "brute-force"

    def __init__(
        self,
        patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
        iterations: int = 16,
        idle_between_iterations_s: float = 0.0,
        stop_after_quiet_iterations: int = 0,
    ) -> None:
        if iterations <= 0:
            raise ConfigurationError(f"iterations must be positive, got {iterations!r}")
        if not patterns:
            raise ConfigurationError("at least one data pattern is required")
        if idle_between_iterations_s < 0.0:
            raise ConfigurationError("idle gap must be non-negative")
        if stop_after_quiet_iterations < 0:
            raise ConfigurationError("quiet-iteration threshold must be non-negative")
        self.patterns = tuple(patterns)
        self.iterations = iterations
        self.idle_between_iterations_s = idle_between_iterations_s
        self.stop_after_quiet_iterations = stop_after_quiet_iterations

    def run(
        self,
        device: ProfilableDevice,
        conditions: Conditions,
        target_conditions: Optional[Conditions] = None,
    ) -> RetentionProfile:
        """Profile ``device`` at ``conditions``.

        ``target_conditions`` defaults to the profiling conditions (plain
        brute force); reach profiling passes the real target so the profile
        records both.
        """
        if conditions.trefi > device.max_trefi_s:
            raise ProfilingError(
                f"profiling interval {conditions.trefi!r}s exceeds the device's "
                f"supported maximum of {device.max_trefi_s!r}s"
            )
        target = target_conditions if target_conditions is not None else conditions
        watch = ClockStopwatch(device.clock)
        started_at = device.clock.now
        index_space = getattr(device, "error_index_space", None)
        accumulator = ObservedCellAccumulator(
            index_space() if callable(index_space) else None
        )
        # (iteration, pattern_key, new-cells handle, observed, clock_time):
        # frozensets are materialized once at the end of the run, not per
        # read -- the hot loop stays in numpy index space.
        pending = []
        quiet_streak = 0
        iterations_run = 0
        with obs.span(
            "profiler.run",
            mechanism=self.mechanism_name,
            chip_id=getattr(device, "chip_id", None),
            trefi=conditions.trefi,
        ):
            for iteration in range(self.iterations):
                # The idle gap models inter-round infrastructure overhead,
                # so it is charged strictly between iterations: never before
                # the first, never after the last or after a quiet-streak
                # stop (the run is already over).
                if iteration and self.idle_between_iterations_s:
                    device.wait(self.idle_between_iterations_s)
                new_this_iteration = 0
                for pattern in self.patterns:
                    device.write_pattern(pattern)
                    device.disable_refresh()
                    device.wait(conditions.trefi)
                    device.enable_refresh()
                    new_cells, observed_count = accumulator.observe(device.read_errors())
                    new_this_iteration += len(new_cells)
                    pending.append(
                        (iteration, pattern.key, new_cells, observed_count, device.clock.now)
                    )
                iterations_run = iteration + 1
                if obs.enabled():
                    obs.counter("profiler.iterations", mechanism=self.mechanism_name)
                    obs.counter(
                        "profiler.new_cells", new_this_iteration, mechanism=self.mechanism_name
                    )
                    obs.observe(
                        "profiler.new_cells_per_iteration",
                        new_this_iteration,
                        mechanism=self.mechanism_name,
                    )
                    obs.emit(
                        "profiler.iteration",
                        mechanism=self.mechanism_name,
                        chip_id=getattr(device, "chip_id", None),
                        iteration=iteration,
                        new_cells=new_this_iteration,
                        discovered=len(accumulator),
                    )
                if self.stop_after_quiet_iterations:
                    quiet_streak = quiet_streak + 1 if new_this_iteration == 0 else 0
                    if quiet_streak >= self.stop_after_quiet_iterations:
                        break
        records = tuple(
            IterationRecord(
                iteration=it,
                pattern_key=key,
                new_cells=ObservedCellAccumulator.materialize(new_cells),
                observed_count=observed_count,
                clock_time=clock_time,
            )
            for it, key, new_cells, observed_count, clock_time in pending
        )
        return RetentionProfile(
            failing=accumulator.discovered(),
            profiling_conditions=conditions,
            target_conditions=target,
            patterns=tuple(p.key for p in self.patterns),
            iterations=iterations_run,
            runtime_seconds=watch.elapsed,
            started_at=started_at,
            records=records,
            mechanism=self.mechanism_name,
        )
