"""Profile longevity: how long a retention profile stays valid (Section 6.2).

New failures keep accumulating after profiling (VRT, Observation 2), and
profiling itself misses a coverage-dependent number of cells.  An ECC of a
given strength tolerates ``N`` failing cells for a target UBER (Table 1);
once the missed-plus-accumulated failures approach ``N``, the system must
reprofile.  Eq 7:

    T = (N - C) / A

with ``N`` the tolerable failures, ``C`` the failures missed by profiling,
and ``A`` the steady-state accumulation rate.

The worked example of Section 6.2.3 -- 2 GB DRAM, SECDED, target 1024 ms at
45 degC, 99% coverage -> T ~= 2.3 days -- is reproduced by
:func:`longevity_for_system` and asserted in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..conditions import Conditions
from ..dram.geometry import GIBIBIT
from ..dram.vendor import VendorModel
from ..ecc.model import CONSUMER_UBER, EccStrength, tolerable_bit_errors
from ..errors import ConfigurationError

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 86400.0


def profile_longevity_seconds(
    tolerable_failures: float,
    missed_failures: float,
    accumulation_per_hour: float,
) -> float:
    """Eq 7: seconds until accumulated failures exhaust the ECC budget.

    Returns ``inf`` when nothing accumulates; returns 0 when profiling
    already missed more than the budget (reprofiling cannot help -- the
    system needs stronger ECC or a less aggressive target).
    """
    if tolerable_failures < 0.0 or missed_failures < 0.0:
        raise ConfigurationError("failure counts must be non-negative")
    if accumulation_per_hour < 0.0:
        raise ConfigurationError("accumulation rate must be non-negative")
    headroom = tolerable_failures - missed_failures
    if headroom <= 0.0:
        return 0.0
    if accumulation_per_hour == 0.0:
        return math.inf
    return headroom / accumulation_per_hour * _SECONDS_PER_HOUR


@dataclass(frozen=True)
class LongevityEstimate:
    """Inputs and output of one Eq-7 evaluation."""

    tolerable_failures: float
    expected_failures: float
    missed_failures: float
    accumulation_per_hour: float
    longevity_seconds: float

    @property
    def longevity_days(self) -> float:
        return self.longevity_seconds / _SECONDS_PER_DAY

    @property
    def longevity_hours(self) -> float:
        return self.longevity_seconds / _SECONDS_PER_HOUR

    @property
    def feasible(self) -> bool:
        """Whether any positive operating window exists at all."""
        return self.longevity_seconds > 0.0


def longevity_for_system(
    vendor: VendorModel,
    capacity_bytes: int,
    ecc: EccStrength,
    target: Conditions,
    coverage: float = 0.99,
    target_uber: float = CONSUMER_UBER,
) -> LongevityEstimate:
    """End-to-end Eq-7 evaluation from system parameters.

    ``N`` comes from the ECC strength and UBER target (Table 1); the
    expected failure count and accumulation rate come from the vendor model
    at the target conditions; ``C`` is the (1 - coverage) share of expected
    failures missed by profiling.
    """
    if not (0.0 <= coverage <= 1.0):
        raise ConfigurationError(f"coverage must lie in [0, 1], got {coverage!r}")
    capacity_bits = capacity_bytes * 8
    tolerable = tolerable_bit_errors(ecc, capacity_bytes, target_uber)
    expected = vendor.expected_failures(target, capacity_bits)
    missed = (1.0 - coverage) * expected
    accumulation = vendor.vrt_arrival_rate_per_hour(
        target.trefi, capacity_bits / GIBIBIT, target.temperature
    )
    return LongevityEstimate(
        tolerable_failures=tolerable,
        expected_failures=expected,
        missed_failures=missed,
        accumulation_per_hour=accumulation,
        longevity_seconds=profile_longevity_seconds(tolerable, missed, accumulation),
    )


def minimum_required_coverage(
    vendor: VendorModel,
    capacity_bytes: int,
    ecc: EccStrength,
    target: Conditions,
    target_uber: float = CONSUMER_UBER,
) -> float:
    """Least coverage for which the missed failures alone fit in the budget.

    Section 6.2.2: applying the tolerable RBER to the RBER at the target
    refresh interval "directly compute[s] the minimum coverage required from
    a profiling mechanism".  A result above 1 is clamped -- it means the
    target is infeasible for this ECC even with perfect profiling.
    """
    expected = vendor.expected_failures(target, capacity_bytes * 8)
    if expected == 0.0:
        return 0.0
    tolerable = tolerable_bit_errors(ecc, capacity_bytes, target_uber)
    required = 1.0 - tolerable / expected
    return min(max(required, 0.0), 1.0)
