"""Empirical exploration of the reach-profiling tradeoff space (Section 6.1).

Reproduces the methodology behind Figures 9 and 10: brute-force profiling is
conducted at a grid of (refresh interval, temperature) points; every grid
point is then treated as a *target* with every more-aggressive point as its
*reach* conditions, yielding distributions of coverage, false positive rate,
and runtime for each (delta interval, delta temperature) combination.  The
paper observes those distributions are tight (std < 10% of range), which
licenses summarizing each delta by its mean -- exactly what the contour
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..conditions import Conditions, ReachDelta
from ..errors import ConfigurationError
from ..patterns import STANDARD_PATTERNS, DataPattern
from .bruteforce import BruteForceProfiler
from .metrics import coverage as coverage_of
from .metrics import false_positive_rate, iterations_to_coverage
from .profile import RetentionProfile


@dataclass(frozen=True)
class TradeoffCell:
    """Aggregated metrics for one (delta interval, delta temperature)."""

    delta: ReachDelta
    coverage_mean: float
    coverage_std: float
    fpr_mean: float
    fpr_std: float
    runtime_norm_mean: float
    iterations_mean: float
    samples: int


@dataclass(frozen=True)
class TradeoffSurface:
    """The full exploration result: one :class:`TradeoffCell` per delta."""

    base_conditions: Conditions
    delta_trefis: Tuple[float, ...]
    delta_temperatures: Tuple[float, ...]
    cells: Dict[Tuple[float, float], TradeoffCell]

    def cell(self, delta: ReachDelta) -> TradeoffCell:
        key = (delta.delta_trefi, delta.delta_temperature)
        try:
            return self.cells[key]
        except KeyError:
            raise ConfigurationError(f"no tradeoff data for delta {delta}") from None

    def grid(self, metric: str) -> np.ndarray:
        """2-D array of one metric, indexed [temperature][interval].

        ``metric`` is one of ``coverage``, ``fpr``, ``runtime``.
        """
        attr = {
            "coverage": "coverage_mean",
            "fpr": "fpr_mean",
            "runtime": "runtime_norm_mean",
        }.get(metric)
        if attr is None:
            raise ConfigurationError(f"unknown metric {metric!r}")
        out = np.full((len(self.delta_temperatures), len(self.delta_trefis)), np.nan)
        for j, d_temp in enumerate(self.delta_temperatures):
            for i, d_trefi in enumerate(self.delta_trefis):
                cell = self.cells.get((d_trefi, d_temp))
                if cell is not None:
                    out[j, i] = getattr(cell, attr)
        return out

    def best_reach(
        self,
        min_coverage: float = 0.99,
        max_fpr: float = 0.50,
    ) -> Optional[TradeoffCell]:
        """Fastest delta meeting the coverage and false-positive constraints.

        This is the selection rule of Section 6.1.2: push the reach as far
        as the mitigation mechanism's false-positive tolerance allows.
        """
        feasible = [
            cell
            for cell in self.cells.values()
            if cell.coverage_mean >= min_coverage and cell.fpr_mean <= max_fpr
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda c: c.runtime_norm_mean)


class TradeoffExplorer:
    """Runs the grid characterization behind Figures 9 and 10.

    Parameters
    ----------
    device_factory:
        Zero-argument callable returning a fresh device.  Using the same
        seed for every device keeps the static weak-cell population
        identical across grid points, mirroring re-testing one physical chip.
    patterns / iterations:
        Brute-force configuration at each grid point (the paper uses 16
        iterations of 6 patterns and their inverses).
    coverage_target:
        Coverage level that defines "profiling is done" for the runtime
        metric (Figure 10 uses 90%).
    """

    def __init__(
        self,
        device_factory: Callable[[], object],
        patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
        iterations: int = 16,
        coverage_target: float = 0.90,
    ) -> None:
        if not (0.0 < coverage_target <= 1.0):
            raise ConfigurationError(f"coverage_target must lie in (0, 1], got {coverage_target!r}")
        self.device_factory = device_factory
        self.patterns = tuple(patterns)
        self.iterations = iterations
        self.coverage_target = coverage_target

    # ------------------------------------------------------------------
    def _profile_grid(
        self,
        base: Conditions,
        delta_trefis: Sequence[float],
        delta_temperatures: Sequence[float],
    ) -> Dict[Tuple[int, int], RetentionProfile]:
        profiler = BruteForceProfiler(patterns=self.patterns, iterations=self.iterations)
        profiles: Dict[Tuple[int, int], RetentionProfile] = {}
        # Grid points re-test "the same physical chip", so reuse one device
        # and reset() it between points instead of paying weak-tail sampling
        # + DPD + VRT construction per grid cell.  reset() replays a freshly
        # constructed chip exactly, so results are unchanged; devices
        # without reset() (custom factories) fall back to reconstruction.
        device = None
        for j, d_temp in enumerate(delta_temperatures):
            for i, d_trefi in enumerate(delta_trefis):
                if device is None:
                    device = self.device_factory()
                else:
                    reset = getattr(device, "reset", None)
                    if callable(reset):
                        reset()
                    else:
                        device = self.device_factory()
                conditions = Conditions(
                    trefi=base.trefi + d_trefi,
                    temperature=base.temperature + d_temp,
                )
                device.set_temperature(conditions.temperature)
                profiles[(i, j)] = profiler.run(device, conditions)
        return profiles

    def explore(
        self,
        base: Conditions,
        delta_trefis: Sequence[float],
        delta_temperatures: Sequence[float] = (0.0,),
    ) -> TradeoffSurface:
        """Characterize every delta reachable within the given grids.

        Both grids must start at 0 and be sorted ascending with uniform
        spacing so that pairwise differences land back on the grid.
        """
        for grid in (delta_trefis, delta_temperatures):
            if not grid or grid[0] != 0.0 or list(grid) != sorted(grid):
                raise ConfigurationError("delta grids must start at 0 and be ascending")
            diffs = np.diff(grid)
            if np.any(diffs <= 0.0):
                raise ConfigurationError(
                    f"delta grid {tuple(grid)!r} contains duplicate values; "
                    "grids must be strictly ascending"
                )
            # Pairwise differences of grid values must land back on the
            # grid, otherwise the snap-to-nearest below merges samples into
            # the wrong delta bucket -- that requires uniform spacing.
            if diffs.size and not np.allclose(diffs, diffs[0], rtol=1e-9, atol=1e-12):
                raise ConfigurationError(
                    f"delta grid {tuple(grid)!r} is not uniformly spaced; "
                    "pairwise deltas would not land on the grid"
                )
        profiles = self._profile_grid(base, delta_trefis, delta_temperatures)

        samples: Dict[Tuple[float, float], Dict[str, List[float]]] = {}
        for (ti, tj), target_profile in profiles.items():
            truth = target_profile.failing
            target_iters = iterations_to_coverage(target_profile, truth, self.coverage_target)
            if target_iters is None:
                target_iters = self.iterations
            # Scale the measured run time (which includes IO per Eq 9) down
            # to the iterations actually needed for the coverage target.
            target_runtime = target_profile.runtime_seconds * target_iters / self.iterations
            for (ri, rj), reach_profile in profiles.items():
                if ri < ti or rj < tj:
                    continue
                d_trefi = delta_trefis[ri] - delta_trefis[ti]
                d_temp = delta_temperatures[rj] - delta_temperatures[tj]
                # Snap to grid values to avoid float drift in dict keys.
                d_trefi = min(delta_trefis, key=lambda v: abs(v - d_trefi))
                d_temp = min(delta_temperatures, key=lambda v: abs(v - d_temp))
                if (ri, rj) == (ti, tj):
                    cov, fpr, n_iters = 1.0, 0.0, target_iters
                else:
                    cov = coverage_of(reach_profile.failing, truth)
                    fpr = false_positive_rate(reach_profile.failing, truth)
                    reached = iterations_to_coverage(reach_profile, truth, self.coverage_target)
                    n_iters = reached if reached is not None else self.iterations
                reach_runtime = reach_profile.runtime_seconds * n_iters / self.iterations
                bucket = samples.setdefault(
                    (d_trefi, d_temp),
                    {"coverage": [], "fpr": [], "runtime_norm": [], "iterations": []},
                )
                bucket["coverage"].append(cov)
                bucket["fpr"].append(fpr)
                bucket["runtime_norm"].append(reach_runtime / target_runtime)
                bucket["iterations"].append(float(n_iters))

        cells: Dict[Tuple[float, float], TradeoffCell] = {}
        for (d_trefi, d_temp), bucket in samples.items():
            cells[(d_trefi, d_temp)] = TradeoffCell(
                delta=ReachDelta(delta_trefi=d_trefi, delta_temperature=d_temp),
                coverage_mean=float(np.mean(bucket["coverage"])),
                coverage_std=float(np.std(bucket["coverage"])),
                fpr_mean=float(np.mean(bucket["fpr"])),
                fpr_std=float(np.std(bucket["fpr"])),
                runtime_norm_mean=float(np.mean(bucket["runtime_norm"])),
                iterations_mean=float(np.mean(bucket["iterations"])),
                samples=len(bucket["coverage"]),
            )
        return TradeoffSurface(
            base_conditions=base,
            delta_trefis=tuple(delta_trefis),
            delta_temperatures=tuple(delta_temperatures),
            cells=cells,
        )
