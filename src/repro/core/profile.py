"""Retention failure profiles.

A :class:`RetentionProfile` is the output of any profiling mechanism: the
set of failing cells it discovered, at what conditions, with full
provenance -- per-(iteration, pattern) discovery logs that later analyses
(coverage curves, runtime-to-coverage, Figure 3/5 style plots) replay, plus
JSON serialization so profiles can be stored the way a memory controller
would persist its FaultMap source data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, List, Optional, Sequence, Tuple

from ..conditions import Conditions
from ..errors import ConfigurationError


@dataclass(frozen=True)
class IterationRecord:
    """Discoveries of a single (iteration, pattern) profiling pass."""

    iteration: int
    pattern_key: str
    new_cells: FrozenSet[Hashable]
    observed_count: int  # unique + repeat failures seen in this pass
    clock_time: float

    @property
    def new_count(self) -> int:
        return len(self.new_cells)


@dataclass(frozen=True)
class ProfileDiff:
    """Set difference between two profiles of the same target."""

    appeared: FrozenSet[Hashable]
    disappeared: FrozenSet[Hashable]
    common: FrozenSet[Hashable]

    @property
    def churn(self) -> int:
        """Cells that changed state between the two profiles."""
        return len(self.appeared) + len(self.disappeared)

    @property
    def stability(self) -> float:
        """Share of the union that stayed put (1.0 = identical profiles)."""
        union = len(self.common) + self.churn
        if union == 0:
            return 1.0
        return len(self.common) / union


@dataclass(frozen=True)
class RetentionProfile:
    """A discovered set of failing cells plus full provenance."""

    failing: FrozenSet[Hashable]
    profiling_conditions: Conditions
    target_conditions: Conditions
    patterns: Tuple[str, ...]
    iterations: int
    runtime_seconds: float
    started_at: float
    records: Tuple[IterationRecord, ...] = ()
    mechanism: str = "brute-force"

    def __post_init__(self) -> None:
        if self.runtime_seconds < 0.0:
            raise ConfigurationError("runtime must be non-negative")

    def __len__(self) -> int:
        return len(self.failing)

    def __contains__(self, cell: Hashable) -> bool:
        return cell in self.failing

    @property
    def is_reach_profile(self) -> bool:
        return self.profiling_conditions != self.target_conditions

    # ------------------------------------------------------------------
    # Provenance replay
    # ------------------------------------------------------------------
    def cumulative_counts(self) -> List[int]:
        """Total unique failures after each recorded pass (Figure 3's orange curve)."""
        counts: List[int] = []
        total = 0
        for record in self.records:
            total += record.new_count
            counts.append(total)
        return counts

    def cells_after_iterations(self, n_iterations: int) -> FrozenSet[Hashable]:
        """The failing set as it stood after the first ``n_iterations``."""
        cells: set = set()
        for record in self.records:
            if record.iteration < n_iterations:
                cells |= record.new_cells
        return frozenset(cells)

    def diff(self, other: "RetentionProfile") -> "ProfileDiff":
        """Compare against an earlier profile of the same target.

        The unique/repeat/non-repeat vocabulary of Figure 2 and the VRT
        churn of Figure 3, as a first-class operation: ``appeared`` are
        cells in ``self`` but not ``other`` (VRT newcomers or fresh DPD
        discoveries), ``disappeared`` the reverse, ``common`` the repeats.
        """
        if other.target_conditions != self.target_conditions:
            raise ConfigurationError("cannot diff profiles with different targets")
        return ProfileDiff(
            appeared=frozenset(self.failing - other.failing),
            disappeared=frozenset(other.failing - self.failing),
            common=frozenset(self.failing & other.failing),
        )

    def merged_with(self, other: "RetentionProfile") -> "RetentionProfile":
        """Union of two profiles targeting the same conditions."""
        if other.target_conditions != self.target_conditions:
            raise ConfigurationError("cannot merge profiles with different targets")
        return RetentionProfile(
            failing=self.failing | other.failing,
            profiling_conditions=self.profiling_conditions,
            target_conditions=self.target_conditions,
            patterns=tuple(dict.fromkeys(self.patterns + other.patterns)),
            iterations=self.iterations + other.iterations,
            runtime_seconds=self.runtime_seconds + other.runtime_seconds,
            started_at=min(self.started_at, other.started_at),
            records=self.records + other.records,
            mechanism=self.mechanism,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to JSON (cells become sorted lists; tuples round-trip).

        The sort key is type-aware so a (pathological) profile mixing
        integer and tuple cell references still serializes deterministically.
        """
        def encode_cell(cell):
            return list(cell) if isinstance(cell, tuple) else cell

        def sort_key(encoded):
            if isinstance(encoded, list):
                return (1, tuple(encoded))
            return (0, (encoded,))

        payload = {
            "failing": sorted((encode_cell(c) for c in self.failing), key=sort_key),
            "profiling_conditions": [self.profiling_conditions.trefi, self.profiling_conditions.temperature],
            "target_conditions": [self.target_conditions.trefi, self.target_conditions.temperature],
            "patterns": list(self.patterns),
            "iterations": self.iterations,
            "runtime_seconds": self.runtime_seconds,
            "started_at": self.started_at,
            "mechanism": self.mechanism,
            "records": [
                {
                    "iteration": r.iteration,
                    "pattern_key": r.pattern_key,
                    "new_cells": sorted(
                        (encode_cell(c) for c in r.new_cells), key=sort_key
                    ),
                    "observed_count": r.observed_count,
                    "clock_time": r.clock_time,
                }
                for r in self.records
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RetentionProfile":
        """Inverse of :meth:`to_json`."""
        def decode_cell(cell):
            return tuple(cell) if isinstance(cell, list) else cell

        payload = json.loads(text)
        return cls(
            failing=frozenset(decode_cell(c) for c in payload["failing"]),
            profiling_conditions=Conditions(*payload["profiling_conditions"]),
            target_conditions=Conditions(*payload["target_conditions"]),
            patterns=tuple(payload["patterns"]),
            iterations=payload["iterations"],
            runtime_seconds=payload["runtime_seconds"],
            started_at=payload["started_at"],
            mechanism=payload["mechanism"],
            records=tuple(
                IterationRecord(
                    iteration=r["iteration"],
                    pattern_key=r["pattern_key"],
                    new_cells=frozenset(decode_cell(c) for c in r["new_cells"]),
                    observed_count=r["observed_count"],
                    clock_time=r["clock_time"],
                )
                for r in payload["records"]
            ),
        )
