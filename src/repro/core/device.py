"""The device interface profilers operate against.

Both :class:`~repro.dram.SimulatedDRAMChip` and
:class:`~repro.dram.DRAMModule` satisfy this protocol; so would a binding to
a real SoftMC-style testing infrastructure.  Profilers treat the cell
references a device reports as opaque hashable ids (integers for a chip,
``(chip, flat)`` tuples for a module).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from ..clock import SimClock
from ..patterns import DataPattern


@runtime_checkable
class ProfilableDevice(Protocol):
    """Command-level operations a retention profiler needs."""

    clock: SimClock

    @property
    def temperature_c(self) -> float:  # pragma: no cover - protocol stub
        ...

    @property
    def max_trefi_s(self) -> float:  # pragma: no cover - protocol stub
        ...

    def write_pattern(self, pattern: DataPattern) -> None:  # pragma: no cover
        ...

    def disable_refresh(self) -> None:  # pragma: no cover - protocol stub
        ...

    def enable_refresh(self) -> None:  # pragma: no cover - protocol stub
        ...

    def wait(self, seconds: float) -> None:  # pragma: no cover - protocol stub
        ...

    def read_errors(self) -> Iterable[Hashable]:  # pragma: no cover
        ...

    def set_temperature(self, temperature_c: float) -> None:  # pragma: no cover
        ...


def normalize_cells(errors: Iterable) -> frozenset:
    """Convert a device error read-out into a frozenset of hashable refs."""
    cells = []
    for item in errors:
        if isinstance(item, tuple):
            cells.append((int(item[0]), int(item[1])))
        else:
            cells.append(int(item))
    return frozenset(cells)


#: Per-read "new cells" handle returned by
#: :meth:`ObservedCellAccumulator.observe` -- either an int64 index array
#: (vectorized path) or an already-built frozenset (generic fallback).
#: ``len()`` works on both; :meth:`ObservedCellAccumulator.materialize`
#: turns either into the frozenset profilers record.
NewCells = Union[np.ndarray, frozenset]


class ObservedCellAccumulator:
    """Accumulates observed failing cells across profiling reads.

    The reference bookkeeping (``normalize_cells`` -> python set difference
    -> set union, per read) costs a python-level loop over every observed
    cell on every one of the hundreds of reads in a profiling run.  A chip
    reports errors as a sorted int64 index array whose elements almost all
    come from a fixed *index space* (the weak tail), so the accumulator
    tracks discoveries as a dense boolean mask over that space plus a small
    sorted overflow array for cells outside it (VRT episodes can strike
    anywhere in the array).  Per read that is two ``searchsorted``-class
    operations instead of thousands of hash insertions.

    Devices that report anything other than an integer ndarray (e.g. a
    :class:`~repro.dram.DRAMModule`'s ``(chip, flat)`` tuples) degrade the
    accumulator permanently to plain-set bookkeeping -- identical results,
    reference speed.

    The per-read return value stays in array form; profilers materialize the
    frozensets the :class:`~repro.core.profile.IterationRecord` API promises
    only once, at the end of the run (:meth:`materialize`).  Both paths
    produce frozensets of python ints equal to what the reference
    ``normalize_cells`` pipeline builds.
    """

    def __init__(self, space: Optional[np.ndarray] = None) -> None:
        self._space: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None
        if space is not None:
            space = np.asarray(space)
            if space.size:
                self._space = space
                self._mask = np.zeros(space.size, dtype=bool)
        self._extras = np.empty(0, dtype=np.int64)
        self._set: Optional[set] = None

    def __len__(self) -> int:
        if self._set is not None:
            return len(self._set)
        count = int(self._extras.size)
        if self._mask is not None:
            count += int(np.count_nonzero(self._mask))
        return count

    def observe(self, errors: Iterable[Hashable]) -> Tuple[NewCells, int]:
        """Fold one read-out in; returns (newly seen cells, observed count).

        ``observed count`` counts *distinct* cells in the read-out, matching
        ``len(normalize_cells(errors))``.
        """
        if (
            self._set is None
            and isinstance(errors, np.ndarray)
            and errors.dtype.kind in "iu"
        ):
            return self._observe_array(errors)
        return self._observe_set(errors)

    def _observe_array(self, errors: np.ndarray) -> Tuple[np.ndarray, int]:
        arr = errors.astype(np.int64, copy=False)
        # Chip read-outs are already sorted-unique; a strictness check is
        # cheaper than an unconditional unique() and keeps arbitrary
        # device arrays safe.
        if arr.size > 1 and not np.all(arr[1:] > arr[:-1]):
            arr = np.unique(arr)
        if self._space is not None:
            pos = np.searchsorted(self._space, arr)
            in_space = self._space[np.minimum(pos, self._space.size - 1)] == arr
            idx = pos[in_space]
            newly_hit = ~self._mask[idx]
            new_in = arr[in_space][newly_hit]
            self._mask[idx[newly_hit]] = True
            outside = arr[~in_space]
        else:
            new_in = arr[:0]
            outside = arr
        if outside.size:
            new_out = outside[~np.isin(outside, self._extras, assume_unique=True)]
            if new_out.size:
                self._extras = np.union1d(self._extras, new_out)
            new = np.concatenate((new_in, new_out)) if new_out.size else new_in
        else:
            new = new_in
        return new, int(arr.size)

    def _observe_set(self, errors: Iterable[Hashable]) -> Tuple[frozenset, int]:
        if self._set is None:
            self._degrade()
        observed = normalize_cells(errors)
        new = frozenset(observed - self._set)
        self._set |= observed
        return new, len(observed)

    def _degrade(self) -> None:
        """Switch permanently to plain-set bookkeeping, keeping history."""
        cells: list = []
        if self._mask is not None and self._space is not None:
            cells.extend(self._space[self._mask].tolist())
        cells.extend(self._extras.tolist())
        self._set = set(cells)
        self._space = None
        self._mask = None
        self._extras = self._extras[:0]

    def discovered(self) -> frozenset:
        """Every cell observed so far, as the frozenset profiles record."""
        if self._set is not None:
            return frozenset(self._set)
        parts = []
        if self._mask is not None and self._space is not None:
            parts.append(self._space[self._mask])
        if self._extras.size:
            parts.append(self._extras)
        if not parts:
            return frozenset()
        return frozenset(np.concatenate(parts).tolist())

    @staticmethod
    def materialize(new_cells: NewCells) -> frozenset:
        """Convert one :meth:`observe` handle into its frozenset form."""
        if isinstance(new_cells, frozenset):
            return new_cells
        return frozenset(new_cells.tolist())
