"""The device interface profilers operate against.

Both :class:`~repro.dram.SimulatedDRAMChip` and
:class:`~repro.dram.DRAMModule` satisfy this protocol; so would a binding to
a real SoftMC-style testing infrastructure.  Profilers treat the cell
references a device reports as opaque hashable ids (integers for a chip,
``(chip, flat)`` tuples for a module).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Protocol, runtime_checkable

from ..clock import SimClock
from ..patterns import DataPattern


@runtime_checkable
class ProfilableDevice(Protocol):
    """Command-level operations a retention profiler needs."""

    clock: SimClock

    @property
    def temperature_c(self) -> float:  # pragma: no cover - protocol stub
        ...

    @property
    def max_trefi_s(self) -> float:  # pragma: no cover - protocol stub
        ...

    def write_pattern(self, pattern: DataPattern) -> None:  # pragma: no cover
        ...

    def disable_refresh(self) -> None:  # pragma: no cover - protocol stub
        ...

    def enable_refresh(self) -> None:  # pragma: no cover - protocol stub
        ...

    def wait(self, seconds: float) -> None:  # pragma: no cover - protocol stub
        ...

    def read_errors(self) -> Iterable[Hashable]:  # pragma: no cover
        ...

    def set_temperature(self, temperature_c: float) -> None:  # pragma: no cover
        ...


def normalize_cells(errors: Iterable) -> frozenset:
    """Convert a device error read-out into a frozenset of hashable refs."""
    cells = []
    for item in errors:
        if isinstance(item, tuple):
            cells.append((int(item[0]), int(item[1])))
        else:
            cells.append(int(item))
    return frozenset(cells)
