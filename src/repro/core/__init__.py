"""The paper's primary contribution: reach profiling and its analysis tools.

* :class:`BruteForceProfiler` -- Algorithm 1, the state-of-the-art baseline.
* :class:`ReachProfiler` / :class:`REAPER` -- profiling at aggressive
  conditions (Section 6) and its firmware implementation (Section 7.1).
* :mod:`metrics` -- coverage / false positive rate / runtime.
* :mod:`tradeoff` -- the Figure 9/10 tradeoff-space exploration.
* :mod:`longevity` -- the Eq 2-7 ECC/UBER and profile-longevity analysis.
* :mod:`scheduler` -- online reprofiling cadence (Figure 11).
"""

from ..conditions import Conditions, HEADLINE_REACH, ReachDelta
from .bruteforce import BruteForceProfiler
from .device import ObservedCellAccumulator, ProfilableDevice, normalize_cells
from .longevity import (
    LongevityEstimate,
    longevity_for_system,
    minimum_required_coverage,
    profile_longevity_seconds,
)
from .metrics import (
    ProfileEvaluation,
    coverage,
    coverage_curve,
    evaluate,
    false_positive_rate,
    iterations_to_coverage,
)
from .estimation import AccumulationRateEstimator, RateEstimate
from .fleetprof import FleetChipResult, FleetProfiler
from .hybrid import HybridMaintainer, MaintenanceReport
from .incremental import IncrementalReachProfiler, PassReport
from .planner import DeploymentPlan, PlannerConstraints, RelaxedRefreshPlanner
from .profile import IterationRecord, ProfileDiff, RetentionProfile
from .reach import ReachProfiler
from .reaper import ProfilingRound, REAPER
from .runtime_model import ProfilingRoundModel, reach_speedup, round_runtime_seconds
from .scheduler import OnlineProfilingScheduler, ScheduleReport
from .tradeoff import TradeoffCell, TradeoffExplorer, TradeoffSurface

__all__ = [
    "Conditions",
    "ReachDelta",
    "HEADLINE_REACH",
    "BruteForceProfiler",
    "FleetChipResult",
    "FleetProfiler",
    "ReachProfiler",
    "REAPER",
    "ProfilingRound",
    "ProfilableDevice",
    "normalize_cells",
    "ObservedCellAccumulator",
    "RetentionProfile",
    "IterationRecord",
    "ProfileDiff",
    "ProfileEvaluation",
    "coverage",
    "false_positive_rate",
    "evaluate",
    "coverage_curve",
    "iterations_to_coverage",
    "ProfilingRoundModel",
    "round_runtime_seconds",
    "reach_speedup",
    "LongevityEstimate",
    "longevity_for_system",
    "minimum_required_coverage",
    "profile_longevity_seconds",
    "OnlineProfilingScheduler",
    "ScheduleReport",
    "RelaxedRefreshPlanner",
    "PlannerConstraints",
    "DeploymentPlan",
    "IncrementalReachProfiler",
    "PassReport",
    "HybridMaintainer",
    "MaintenanceReport",
    "AccumulationRateEstimator",
    "RateEstimate",
    "TradeoffExplorer",
    "TradeoffSurface",
    "TradeoffCell",
]
