"""Incremental online profiling with bounded pauses.

REAPER's evaluation pessimistically assumes each profiling round is one
long full-system pause (Section 7).  The paper notes that "how to
efficiently profile large portions of DRAM without significant performance
loss" is an open design-space question.  This module implements the
simplest answer: *temporal slicing*.  A profiling round is split into its
individual (iteration, pattern) passes; the system pauses only for one pass
at a time and runs normally in between.  Total profiling work is unchanged
-- Eq 9 still holds -- but the maximum pause shrinks from the full round to
a single pass, at the cost of a slightly staler profile (VRT keeps evolving
while the round is spread out; the longevity budget of Eq 7 already covers
that drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..conditions import Conditions, HEADLINE_REACH, ReachDelta
from ..errors import ConfigurationError, ProfilingError
from ..patterns import STANDARD_PATTERNS, DataPattern
from .device import ProfilableDevice, normalize_cells
from .profile import IterationRecord, RetentionProfile


@dataclass(frozen=True)
class PassReport:
    """One bounded pause: a single (iteration, pattern) pass."""

    iteration: int
    pattern_key: str
    pause_seconds: float
    new_cells: int


class IncrementalReachProfiler:
    """Reach profiling spread across many short pauses.

    Usage::

        profiler = IncrementalReachProfiler(device, target)
        while not profiler.finished:
            report = profiler.step()       # one short pause
            device.wait(gap_seconds)       # system runs normally
        profile = profiler.result()
    """

    def __init__(
        self,
        device: ProfilableDevice,
        target: Conditions,
        reach: ReachDelta = HEADLINE_REACH,
        patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
        iterations: int = 5,
    ) -> None:
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if not patterns:
            raise ConfigurationError("at least one pattern is required")
        self.device = device
        self.target = target
        self.reach = reach
        self.conditions = target.with_reach(reach)
        if self.conditions.trefi > device.max_trefi_s:
            raise ProfilingError(
                f"reach interval {self.conditions.trefi!r}s exceeds the device's maximum"
            )
        self.patterns = tuple(patterns)
        self.iterations = iterations
        self._cursor = 0
        self._discovered: set = set()
        self._records: List[IterationRecord] = []
        self._pass_reports: List[PassReport] = []
        self._started_at: Optional[float] = None
        self._total_pause = 0.0

    # ------------------------------------------------------------------
    @property
    def total_passes(self) -> int:
        return self.iterations * len(self.patterns)

    @property
    def passes_done(self) -> int:
        return self._cursor

    @property
    def finished(self) -> bool:
        return self._cursor >= self.total_passes

    @property
    def max_pause_seconds(self) -> float:
        """Longest single pause so far."""
        return max((r.pause_seconds for r in self._pass_reports), default=0.0)

    @property
    def total_pause_seconds(self) -> float:
        return self._total_pause

    # ------------------------------------------------------------------
    def step(self) -> PassReport:
        """Run exactly one (iteration, pattern) pass: one bounded pause."""
        if self.finished:
            raise ProfilingError("the incremental round is already complete")
        if self._started_at is None:
            self._started_at = self.device.clock.now
        iteration = self._cursor // len(self.patterns)
        pattern = self.patterns[self._cursor % len(self.patterns)]

        pause_start = self.device.clock.now
        self.device.write_pattern(pattern)
        self.device.disable_refresh()
        self.device.wait(self.conditions.trefi)
        self.device.enable_refresh()
        observed = normalize_cells(self.device.read_errors())
        pause = self.device.clock.now - pause_start

        new_cells = frozenset(observed - self._discovered)
        self._discovered |= observed
        self._records.append(
            IterationRecord(
                iteration=iteration,
                pattern_key=pattern.key,
                new_cells=new_cells,
                observed_count=len(observed),
                clock_time=self.device.clock.now,
            )
        )
        report = PassReport(
            iteration=iteration,
            pattern_key=pattern.key,
            pause_seconds=pause,
            new_cells=len(new_cells),
        )
        self._pass_reports.append(report)
        self._total_pause += pause
        self._cursor += 1
        return report

    def run_with_gaps(self, gap_seconds: float) -> RetentionProfile:
        """Drive the whole round, letting the system run between passes."""
        if gap_seconds < 0.0:
            raise ConfigurationError("gap must be non-negative")
        while not self.finished:
            self.step()
            if not self.finished and gap_seconds > 0.0:
                self.device.wait(gap_seconds)
        return self.result()

    def result(self) -> RetentionProfile:
        """The assembled profile once every pass has run."""
        if not self.finished:
            raise ProfilingError(
                f"round incomplete: {self.passes_done}/{self.total_passes} passes"
            )
        return RetentionProfile(
            failing=frozenset(self._discovered),
            profiling_conditions=self.conditions,
            target_conditions=self.target,
            patterns=tuple(p.key for p in self.patterns),
            iterations=self.iterations,
            runtime_seconds=self._total_pause,
            started_at=self._started_at if self._started_at is not None else 0.0,
            records=tuple(self._records),
            mechanism="reach-incremental",
        )
