"""Online estimation of the new-failure accumulation rate.

Eq 7's longevity depends on the accumulation rate ``A``, which Section 6.3
says should come from detailed chip characterization.  In deployment the
system can do better: every profiling round and every ECC scrub *observes*
newly failing cells, so ``A`` can be re-estimated continuously and the
reprofiling cadence adapted to the chip actually in the machine (VRT rates
vary chip to chip and drift with temperature).

The estimator treats newcomer discoveries as a Poisson process: the rate
estimate is total newcomers over total observed time, and the confidence
interval follows from the Poisson count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from .longevity import profile_longevity_seconds

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class RateEstimate:
    """A Poisson rate estimate with a normal-approximation interval."""

    rate_per_hour: float
    newcomers: int
    observed_hours: float
    confidence_low_per_hour: float
    confidence_high_per_hour: float

    @property
    def is_informative(self) -> bool:
        """Whether enough newcomers were seen for the rate to mean anything."""
        return self.newcomers >= 3


class AccumulationRateEstimator:
    """Accumulates (elapsed time, newcomer count) observations into a rate.

    Observations typically come from successive profiling rounds (newcomers
    = cells a round added that the previous rounds had not seen) or from
    scrub harvesting in a :class:`~repro.core.hybrid.HybridMaintainer` loop.
    """

    def __init__(self) -> None:
        self._observations: List[Tuple[float, int]] = []

    def observe(self, elapsed_seconds: float, newcomers: int) -> None:
        """Record one observation window."""
        if elapsed_seconds <= 0.0:
            raise ConfigurationError("elapsed time must be positive")
        if newcomers < 0:
            raise ConfigurationError("newcomer count must be non-negative")
        self._observations.append((elapsed_seconds, newcomers))

    @property
    def n_observations(self) -> int:
        return len(self._observations)

    @property
    def total_newcomers(self) -> int:
        return sum(count for _, count in self._observations)

    @property
    def total_observed_seconds(self) -> float:
        return sum(elapsed for elapsed, _ in self._observations)

    def estimate(self, z: float = 1.96) -> RateEstimate:
        """Current rate estimate with a ~95% (default) Poisson interval."""
        if not self._observations:
            raise ConfigurationError("no observations recorded yet")
        hours = self.total_observed_seconds / _SECONDS_PER_HOUR
        count = self.total_newcomers
        rate = count / hours
        half_width = z * math.sqrt(max(count, 1)) / hours
        return RateEstimate(
            rate_per_hour=rate,
            newcomers=count,
            observed_hours=hours,
            confidence_low_per_hour=max(rate - half_width, 0.0),
            confidence_high_per_hour=rate + half_width,
        )

    def longevity_seconds(
        self,
        tolerable_failures: float,
        missed_failures: float,
        conservative: bool = True,
    ) -> float:
        """Eq 7 with the *measured* rate.

        With ``conservative=True`` the upper confidence bound of the rate is
        used, so the cadence errs on the side of reprofiling early while the
        estimate is still noisy.
        """
        estimate = self.estimate()
        rate = (
            estimate.confidence_high_per_hour if conservative else estimate.rate_per_hour
        )
        return profile_longevity_seconds(tolerable_failures, missed_failures, rate)
