"""Operating conditions: refresh interval and temperature.

The paper frames everything in terms of *target conditions* (the refresh
interval / temperature a deployed system runs at) and *reach conditions* (a
longer refresh interval and/or a higher temperature used only while
profiling).  :class:`Conditions` is the shared vocabulary; the reach
relationship is expressed with :class:`ReachDelta`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

#: JEDEC-specified default refresh interval (seconds) below 85 degC.
JEDEC_TREFW = 0.064

#: JEDEC-specified refresh interval (seconds) above 85 degC.
JEDEC_TREFW_HOT = 0.032

#: Reference ambient temperature (degC) for most of the paper's experiments.
REFERENCE_TEMPERATURE_C = 45.0

#: The testing infrastructure holds DRAM 15 degC above ambient (Section 4).
DRAM_SELF_HEATING_C = 15.0

#: Reliable ambient range of the paper's thermal chamber (Section 4).
CHAMBER_MIN_AMBIENT_C = 40.0
CHAMBER_MAX_AMBIENT_C = 55.0


@dataclass(frozen=True, order=True)
class Conditions:
    """A (refresh interval, ambient temperature) operating point.

    Parameters
    ----------
    trefi:
        Refresh interval in seconds.  The JEDEC default is 64 ms; the paper
        explores target intervals up to several seconds.
    temperature:
        Ambient temperature in degrees Celsius.
    """

    trefi: float
    temperature: float = REFERENCE_TEMPERATURE_C

    def __post_init__(self) -> None:
        if not (self.trefi > 0.0):
            raise ConfigurationError(f"refresh interval must be positive, got {self.trefi!r}")
        if not (-50.0 <= self.temperature <= 150.0):
            raise ConfigurationError(
                f"temperature {self.temperature!r} degC is outside the plausible range"
            )

    @property
    def trefi_ms(self) -> float:
        """Refresh interval in milliseconds."""
        return self.trefi * 1e3

    def with_reach(self, delta: "ReachDelta") -> "Conditions":
        """Return the reach conditions obtained by applying ``delta``."""
        return Conditions(
            trefi=self.trefi + delta.delta_trefi,
            temperature=self.temperature + delta.delta_temperature,
        )

    def reaches(self, other: "Conditions") -> bool:
        """True if ``self`` is at least as aggressive as ``other`` on both axes."""
        return self.trefi >= other.trefi and self.temperature >= other.temperature

    def __str__(self) -> str:
        return f"{self.trefi_ms:.0f}ms @ {self.temperature:.1f}degC"


@dataclass(frozen=True)
class ReachDelta:
    """Offset from target conditions to reach conditions.

    Reach profiling only ever moves towards *more aggressive* conditions, so
    both components must be non-negative (Section 6: reach conditions are "a
    combination of a longer refresh interval and a higher temperature").
    """

    delta_trefi: float = 0.0
    delta_temperature: float = 0.0

    def __post_init__(self) -> None:
        if self.delta_trefi < 0.0 or self.delta_temperature < 0.0:
            raise ConfigurationError(
                "reach deltas must be non-negative "
                f"(got dt={self.delta_trefi!r}, dT={self.delta_temperature!r})"
            )

    @property
    def is_brute_force(self) -> bool:
        """A zero delta degenerates to brute-force profiling at the target."""
        return self.delta_trefi == 0.0 and self.delta_temperature == 0.0

    def __str__(self) -> str:
        return f"+{self.delta_trefi * 1e3:.0f}ms/+{self.delta_temperature:.1f}degC"


#: The paper's headline reach choice: profile 250 ms above the target interval.
HEADLINE_REACH = ReachDelta(delta_trefi=0.250)
