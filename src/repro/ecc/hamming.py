"""A real SECDED Hamming codec.

Single-Error-Correcting, Double-Error-Detecting extended Hamming code over
an arbitrary data width (64 bits by default, yielding the classic (72, 64)
code assumed throughout Section 6.2.2).  Check bits occupy the power-of-two
positions of the classic Hamming layout, plus one overall parity bit for
double-error detection.

Codewords are plain Python integers (bit 0 = least significant), so the
codec is exact for any width and easy to property-test: flipping any single
bit is corrected, flipping any two bits is detected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..errors import EccError


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    OK = "ok"
    CORRECTED = "corrected"
    DETECTED = "detected"  # uncorrectable (double) error


@dataclass(frozen=True)
class DecodeResult:
    """Decoded data plus what the codec had to do to obtain it."""

    data: int
    status: DecodeStatus
    corrected_bit: Optional[int] = None  # codeword bit position, if corrected


def _check_bit_count(data_bits: int) -> int:
    """Number of Hamming check bits r with 2^r >= data + r + 1."""
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class HammingSECDED:
    """Extended Hamming codec for a fixed data width.

    >>> codec = HammingSECDED(64)
    >>> codec.codeword_bits
    72
    >>> word = codec.encode(0xDEADBEEFCAFEF00D)
    >>> codec.decode(word).data == 0xDEADBEEFCAFEF00D
    True
    """

    def __init__(self, data_bits: int = 64) -> None:
        if data_bits <= 0:
            raise EccError(f"data_bits must be positive, got {data_bits!r}")
        self.data_bits = data_bits
        self.hamming_check_bits = _check_bit_count(data_bits)
        # Classic layout positions are 1-based; position 0 holds the overall
        # parity bit of the SECDED extension.
        self._layout_size = data_bits + self.hamming_check_bits
        self._data_positions: List[int] = []
        position = 1
        while len(self._data_positions) < data_bits:
            if position & (position - 1) != 0:  # not a power of two
                self._data_positions.append(position)
            position += 1
        self._check_positions = [1 << i for i in range(self.hamming_check_bits)]

    @property
    def codeword_bits(self) -> int:
        """Total codeword width: data + Hamming checks + overall parity."""
        return self.data_bits + self.hamming_check_bits + 1

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _compute_checks(self, layout: List[int]) -> None:
        """Fill the check positions of a 1-based layout in place."""
        for check in self._check_positions:
            parity = 0
            for pos in range(1, self._layout_size + 1):
                if pos != check and (pos & check):
                    parity ^= layout[pos]
            layout[check] = parity

    def encode(self, data: int) -> int:
        """Encode ``data`` into a codeword integer."""
        if not (0 <= data < (1 << self.data_bits)):
            raise EccError(f"data does not fit in {self.data_bits} bits")
        layout = [0] * (self._layout_size + 1)
        for i, pos in enumerate(self._data_positions):
            layout[pos] = (data >> i) & 1
        self._compute_checks(layout)
        word = 0
        overall = 0
        for pos in range(1, self._layout_size + 1):
            word |= layout[pos] << pos
            overall ^= layout[pos]
        word |= overall  # bit 0: overall parity
        return word

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _extract_data(self, layout: List[int]) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            data |= layout[pos] << i
        return data

    def decode(self, word: int) -> DecodeResult:
        """Decode a codeword, correcting one flipped bit if present."""
        if not (0 <= word < (1 << self.codeword_bits)):
            raise EccError(f"codeword does not fit in {self.codeword_bits} bits")
        layout = [(word >> pos) & 1 for pos in range(self._layout_size + 1)]
        syndrome = 0
        for check in self._check_positions:
            parity = 0
            for pos in range(1, self._layout_size + 1):
                if pos & check:
                    parity ^= layout[pos]
            if parity:
                syndrome |= check
        overall = 0
        for pos in range(0, self._layout_size + 1):
            overall ^= layout[pos]

        if syndrome == 0 and overall == 0:
            return DecodeResult(data=self._extract_data(layout), status=DecodeStatus.OK)
        if overall == 1:
            # Odd number of flips: a single error, correctable.  Syndrome 0
            # with odd overall parity means the overall parity bit itself
            # flipped.
            if syndrome == 0:
                return DecodeResult(
                    data=self._extract_data(layout),
                    status=DecodeStatus.CORRECTED,
                    corrected_bit=0,
                )
            if syndrome > self._layout_size:
                # Syndrome points outside the layout: uncorrectable pattern.
                return DecodeResult(data=self._extract_data(layout), status=DecodeStatus.DETECTED)
            layout[syndrome] ^= 1
            return DecodeResult(
                data=self._extract_data(layout),
                status=DecodeStatus.CORRECTED,
                corrected_bit=syndrome,
            )
        # Even overall parity with a non-zero syndrome: double error.
        return DecodeResult(data=self._extract_data(layout), status=DecodeStatus.DETECTED)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def flip(self, word: int, bit: int) -> int:
        """Return ``word`` with codeword bit ``bit`` flipped (test helper)."""
        if not (0 <= bit < self.codeword_bits):
            raise EccError(f"bit {bit!r} outside codeword of {self.codeword_bits} bits")
        return word ^ (1 << bit)
