"""Analytic UBER/RBER model for k-bit ECC (Section 6.2.2 / Table 1).

The paper defines the uncorrectable bit error rate of a ``w``-bit ECC word
that corrects up to ``k`` errors, under independent random retention
failures with raw bit error rate ``R`` (Eq 6):

    UBER = (1/w) * sum_{n=k+1}^{w} C(w, n) R^n (1-R)^(w-n)

Inverting this monotone relationship yields the *tolerable RBER* for a
target UBER -- the maximum rate of cells allowed to escape profiling while
the system still meets its reliability target (Table 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from scipy.optimize import brentq
from scipy.stats import binom

from ..errors import ConfigurationError

#: Consumer-grade reliability target (Section 6.2.2).
CONSUMER_UBER = 1e-15

#: Enterprise-grade reliability target (Section 6.2.2).
ENTERPRISE_UBER = 1e-17


@dataclass(frozen=True)
class EccStrength:
    """An ECC configuration: word size and correction capability.

    The paper's examples (Eq 4): no ECC uses 64-bit words; SECDED adds 8
    check bits per 64 data bits (w = 72, k = 1); "ECC-2" extends this by one
    more correctable error.
    """

    name: str
    word_bits: int
    correctable: int

    def __post_init__(self) -> None:
        if self.word_bits <= 0:
            raise ConfigurationError(f"word_bits must be positive, got {self.word_bits!r}")
        if not (0 <= self.correctable < self.word_bits):
            raise ConfigurationError(
                f"correctable must lie in [0, word_bits), got {self.correctable!r}"
            )


NO_ECC = EccStrength(name="No ECC", word_bits=64, correctable=0)
# Table 1's tolerable RBERs (3.8e-9 for SECDED, 6.9e-7 for ECC-2 at
# UBER = 1e-15) correspond to ECC words of ~144 bits -- SECDED over a
# 16-byte fetch (128 data + 16 check bits) -- rather than the 72-bit word
# of Eq 4.  We adopt the 144-bit words so Table 1 and the Section 6.2.3
# longevity example reproduce exactly.
SECDED = EccStrength(name="SECDED", word_bits=144, correctable=1)
ECC2 = EccStrength(name="ECC-2", word_bits=144, correctable=2)

ECC_STRENGTHS: Dict[str, EccStrength] = {e.name: e for e in (NO_ECC, SECDED, ECC2)}


def uncorrectable_word_probability(ecc: EccStrength, rber: float) -> float:
    """P[more than ``ecc.correctable`` failures in one ECC word] (Eq 3/5)."""
    if not (0.0 <= rber <= 1.0):
        raise ConfigurationError(f"RBER must lie in [0, 1], got {rber!r}")
    # Survival function of the binomial: P[N > k].
    return float(binom.sf(ecc.correctable, ecc.word_bits, rber))


def uber(ecc: EccStrength, rber: float) -> float:
    """Uncorrectable bit error rate as a function of the raw BER (Eq 6)."""
    return uncorrectable_word_probability(ecc, rber) / ecc.word_bits


def tolerable_rber(ecc: EccStrength, target_uber: float = CONSUMER_UBER) -> float:
    """Largest RBER whose UBER stays at or below ``target_uber`` (Table 1).

    Solved by bisection in log space; :func:`uber` is strictly increasing in
    the RBER so the root is unique.
    """
    if not (0.0 < target_uber < 1.0):
        raise ConfigurationError(f"target UBER must lie in (0, 1), got {target_uber!r}")

    def objective(log_r: float) -> float:
        return math.log(uber(ecc, math.exp(log_r))) - math.log(target_uber)

    lo, hi = math.log(1e-30), math.log(0.5)
    if objective(lo) > 0.0:
        raise ConfigurationError(
            f"target UBER {target_uber!r} is unreachable even at RBER 1e-30 for {ecc.name}"
        )
    if objective(hi) < 0.0:
        return 0.5
    return math.exp(brentq(objective, lo, hi, xtol=1e-12))


def tolerable_bit_errors(
    ecc: EccStrength,
    capacity_bytes: int,
    target_uber: float = CONSUMER_UBER,
) -> float:
    """Number of failing cells a DRAM of the given size can tolerate.

    This is the ``N`` of the profile-longevity model (Eq 7): the tolerable
    RBER times the number of bits (Table 1's lower half).
    """
    if capacity_bytes <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity_bytes!r}")
    return tolerable_rber(ecc, target_uber) * capacity_bytes * 8
