"""Error-correcting-code substrate.

Provides the binomial UBER/RBER analysis of Section 6.2.2 (:mod:`model`),
a real SECDED Hamming codec (:mod:`hamming`), and the AVATAR-style
ECC-scrubbing profiler baseline of Section 3.2 (:mod:`scrubbing`).
"""

from .bch import BCHDEC, BCHDecodeResult
from .hamming import DecodeStatus, DecodeResult, HammingSECDED
from .memory import EccProtectedMemory, ScrubOutcome
from .model import (
    ECC2,
    ECC_STRENGTHS,
    EccStrength,
    NO_ECC,
    SECDED,
    tolerable_bit_errors,
    tolerable_rber,
    uber,
    uncorrectable_word_probability,
)
from .scrubbing import EccScrubber, ScrubReport

__all__ = [
    "DecodeStatus",
    "DecodeResult",
    "HammingSECDED",
    "BCHDEC",
    "BCHDecodeResult",
    "EccStrength",
    "NO_ECC",
    "SECDED",
    "ECC2",
    "ECC_STRENGTHS",
    "uber",
    "uncorrectable_word_probability",
    "tolerable_rber",
    "tolerable_bit_errors",
    "EccScrubber",
    "ScrubReport",
    "EccProtectedMemory",
    "ScrubOutcome",
]
