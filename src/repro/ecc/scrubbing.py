"""AVATAR-style ECC-scrubbing profiler (Section 3.2 baseline).

ECC scrubbing detects retention failures *passively*: the system keeps
running with whatever data it happens to hold, and a scrubber periodically
walks memory checking ECC words, recording cells that failed.  The paper's
criticism -- which this implementation reproduces measurably -- is that a
passive approach never tests worst-case data patterns, so it cannot bound
what fraction of all possible failures it has found.

The scrubber here operates on the same command-level device interface as the
active profilers, but writes memory only once (the "resident" system data)
and then observes failures across scrub rounds at the target conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, List, Tuple

from ..clock import ClockStopwatch
from ..conditions import Conditions
from ..errors import ConfigurationError
from ..patterns import RANDOM, DataPattern
from .model import SECDED, EccStrength


def word_of(cell: Hashable, data_bits: int = 64) -> Hashable:
    """Map a cell reference to its ECC-word reference.

    Integer cell ids (single chip) map to integer word ids; ``(chip, flat)``
    module refs map to ``(chip, word)``.
    """
    if isinstance(cell, tuple):
        chip, flat = cell
        return (chip, int(flat) // data_bits)
    return int(cell) // data_bits


@dataclass(frozen=True)
class ScrubRound:
    """Counters for one scrub pass."""

    index: int
    corrected_words: int
    uncorrectable_words: int
    new_cells: int


@dataclass(frozen=True)
class ScrubReport:
    """Everything an ECC-scrubbing campaign observed."""

    failing_cells: FrozenSet[Hashable]
    conditions: Conditions
    rounds: Tuple[ScrubRound, ...]
    runtime_seconds: float

    @property
    def total_uncorrectable_words(self) -> int:
        return sum(r.uncorrectable_words for r in self.rounds)


class EccScrubber:
    """Passive retention-failure detection via periodic ECC scrubs."""

    def __init__(
        self,
        ecc: EccStrength = SECDED,
        resident_pattern: DataPattern = RANDOM,
        rounds: int = 16,
        data_bits_per_word: int = 64,
    ) -> None:
        if rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {rounds!r}")
        self.ecc = ecc
        self.resident_pattern = resident_pattern
        self.rounds = rounds
        self.data_bits_per_word = data_bits_per_word

    def run(self, device, conditions: Conditions) -> ScrubReport:
        """Observe ``rounds`` retention exposures of the resident data.

        Each round lets one target-interval exposure accumulate, then scrubs:
        words with at most ``ecc.correctable`` failing bits are corrected
        (and their cells recorded); words beyond the correction capability
        are counted as uncorrectable -- the events AVATAR-style schemes must
        avoid by reprofiling in time.
        """
        watch = ClockStopwatch(device.clock)
        # The resident data is written once -- the scrubber never gets to
        # choose adversarial patterns, which is the crux of its weakness.
        device.write_pattern(self.resident_pattern)
        seen: set = set()
        round_log: List[ScrubRound] = []
        for index in range(self.rounds):
            device.disable_refresh()
            device.wait(conditions.trefi)
            device.enable_refresh()
            cells = set(_normalize(device.read_errors()))
            words: dict = {}
            for cell in cells:
                key = word_of(cell, self.data_bits_per_word)
                words.setdefault(key, []).append(cell)
            corrected = sum(1 for members in words.values() if len(members) <= self.ecc.correctable)
            uncorrectable = len(words) - corrected
            new_cells = len(cells - seen)
            seen |= cells
            round_log.append(
                ScrubRound(
                    index=index,
                    corrected_words=corrected,
                    uncorrectable_words=uncorrectable,
                    new_cells=new_cells,
                )
            )
        return ScrubReport(
            failing_cells=frozenset(seen),
            conditions=conditions,
            rounds=tuple(round_log),
            runtime_seconds=watch.elapsed,
        )


def _normalize(errors) -> list:
    """Convert a device's error read-out into hashable cell references."""
    result = []
    for item in errors:
        if isinstance(item, tuple):
            result.append((int(item[0]), int(item[1])))
        else:
            result.append(int(item))
    return result
