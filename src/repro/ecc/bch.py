"""A double-error-correcting BCH codec (the "ECC-2" of Table 1, concretely).

Binary BCH code over GF(2^7) with designed distance 5: corrects any two bit
errors and detects many heavier patterns.  The code is shortened to the
configured data width (64 bits by default), giving a (78, 64) codeword --
14 parity bits, i.e. roughly the "ECC-2" overhead class the paper's Table 1
reasons about.

Implementation notes
--------------------
* GF(2^7) arithmetic uses exp/log tables over the primitive polynomial
  x^7 + x^3 + 1.
* The generator polynomial is lcm(m1, m3), the minimal polynomials of
  alpha and alpha^3 (degree 14 for this field).
* Decoding computes syndromes S1 = r(alpha), S3 = r(alpha^3):
  - S1 = S3 = 0: clean;
  - S3 == S1^3 (S1 != 0): single error at position log(S1);
  - otherwise: two errors located by solving the quadratic error locator
    via Chien search; no (or repeated) roots means an uncorrectable
    pattern is *detected*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import EccError
from .hamming import DecodeResult, DecodeStatus

_M = 7
_FIELD = 1 << _M               # 128
_N_FULL = _FIELD - 1           # 127: full code length
_PRIMITIVE_POLY = 0b10001001   # x^7 + x^3 + 1


def _build_tables() -> Tuple[List[int], List[int]]:
    exp = [0] * (2 * _N_FULL)
    log = [0] * _FIELD
    value = 1
    for power in range(_N_FULL):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & _FIELD:
            value ^= _PRIMITIVE_POLY
    for power in range(_N_FULL, 2 * _N_FULL):
        exp[power] = exp[power - _N_FULL]
    return exp, log

_EXP, _LOG = _build_tables()


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def _gf_inv(a: int) -> int:
    if a == 0:
        raise EccError("zero has no inverse in GF(2^7)")
    return _EXP[_N_FULL - _LOG[a]]


def _gf_pow(a: int, n: int) -> int:
    if a == 0:
        return 0
    return _EXP[(_LOG[a] * n) % _N_FULL]


def _minimal_polynomial(alpha_power: int) -> int:
    """Minimal polynomial (as a bitmask) of alpha^alpha_power over GF(2)."""
    # Collect the conjugacy class {a, 2a, 4a, ...} mod (2^m - 1).
    conjugates = set()
    power = alpha_power % _N_FULL
    while power not in conjugates:
        conjugates.add(power)
        power = (power * 2) % _N_FULL
    # poly(x) = product of (x - alpha^c): coefficients live in GF(2^7) but
    # collapse to GF(2) for a minimal polynomial.
    poly = [1]
    for c in conjugates:
        root = _EXP[c]
        # Multiply poly by (x + root).
        next_poly = [0] * (len(poly) + 1)
        for i, coefficient in enumerate(poly):
            next_poly[i] ^= _gf_mul(coefficient, root)
            next_poly[i + 1] ^= coefficient
        poly = next_poly
    mask = 0
    for i, coefficient in enumerate(poly):
        if coefficient not in (0, 1):
            raise EccError("minimal polynomial coefficients must collapse to GF(2)")
        if coefficient:
            mask |= 1 << i
    return mask


def _poly_mul_gf2(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def _poly_mod_gf2(value: int, divisor: int) -> int:
    divisor_degree = divisor.bit_length() - 1
    while value.bit_length() - 1 >= divisor_degree and value:
        shift = (value.bit_length() - 1) - divisor_degree
        value ^= divisor << shift
    return value


#: Generator polynomial g(x) = m1(x) * m3(x) (the classes are disjoint).
_GENERATOR = _poly_mul_gf2(_minimal_polynomial(1), _minimal_polynomial(3))
_PARITY_BITS = _GENERATOR.bit_length() - 1  # 14


@dataclass(frozen=True)
class BCHDecodeResult(DecodeResult):
    """Decode result carrying up to two corrected codeword positions."""

    corrected_bits_pair: Optional[Tuple[int, ...]] = None


class BCHDEC:
    """Shortened double-error-correcting BCH codec.

    >>> codec = BCHDEC(64)
    >>> codec.codeword_bits
    78
    >>> word = codec.encode(0x0123456789ABCDEF)
    >>> codec.decode(word).data == 0x0123456789ABCDEF
    True
    """

    correctable = 2

    def __init__(self, data_bits: int = 64) -> None:
        if data_bits <= 0:
            raise EccError(f"data_bits must be positive, got {data_bits!r}")
        if data_bits + _PARITY_BITS > _N_FULL:
            raise EccError(
                f"data_bits {data_bits!r} too wide for a length-{_N_FULL} BCH code"
            )
        self.data_bits = data_bits
        self.parity_bits = _PARITY_BITS

    @property
    def codeword_bits(self) -> int:
        return self.data_bits + self.parity_bits

    # ------------------------------------------------------------------
    # Encoding (systematic: codeword = data * x^parity + remainder)
    # ------------------------------------------------------------------
    def encode(self, data: int) -> int:
        if not (0 <= data < (1 << self.data_bits)):
            raise EccError(f"data does not fit in {self.data_bits} bits")
        shifted = data << self.parity_bits
        remainder = _poly_mod_gf2(shifted, _GENERATOR)
        return shifted | remainder

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _syndromes(self, word: int) -> Tuple[int, int]:
        s1 = 0
        s3 = 0
        for position in range(self.codeword_bits):
            if (word >> position) & 1:
                s1 ^= _EXP[position % _N_FULL]
                s3 ^= _EXP[(3 * position) % _N_FULL]
        return s1, s3

    def _extract(self, word: int) -> int:
        return word >> self.parity_bits

    def decode(self, word: int) -> BCHDecodeResult:
        """Decode, correcting up to two flipped bits."""
        if not (0 <= word < (1 << self.codeword_bits)):
            raise EccError(f"codeword does not fit in {self.codeword_bits} bits")
        s1, s3 = self._syndromes(word)
        if s1 == 0 and s3 == 0:
            return BCHDecodeResult(data=self._extract(word), status=DecodeStatus.OK)
        if s1 != 0 and s3 == _gf_pow(s1, 3):
            # Single error at position log(S1).
            position = _LOG[s1]
            if position >= self.codeword_bits:
                return BCHDecodeResult(
                    data=self._extract(word), status=DecodeStatus.DETECTED
                )
            corrected = word ^ (1 << position)
            return BCHDecodeResult(
                data=self._extract(corrected),
                status=DecodeStatus.CORRECTED,
                corrected_bit=position,
                corrected_bits_pair=(position,),
            )
        if s1 == 0:
            # S1 = 0 with S3 != 0 cannot come from <= 2 errors.
            return BCHDecodeResult(data=self._extract(word), status=DecodeStatus.DETECTED)
        # Two errors: locator x^2 + S1*x + (S3/S1 + S1^2) with roots at the
        # error locations' field elements.  Chien search over the shortened
        # length only.
        constant = _gf_mul(s3, _gf_inv(s1)) ^ _gf_pow(s1, 2)
        roots = []
        for position in range(self.codeword_bits):
            x = _EXP[position]
            value = _gf_pow(x, 2) ^ _gf_mul(s1, x) ^ constant
            if value == 0:
                roots.append(position)
                if len(roots) == 2:
                    break
        if len(roots) != 2:
            return BCHDecodeResult(data=self._extract(word), status=DecodeStatus.DETECTED)
        corrected = word ^ (1 << roots[0]) ^ (1 << roots[1])
        # Sanity: the corrected word must be a true codeword.
        check1, check3 = self._syndromes(corrected)
        if check1 != 0 or check3 != 0:
            return BCHDecodeResult(data=self._extract(word), status=DecodeStatus.DETECTED)
        return BCHDecodeResult(
            data=self._extract(corrected),
            status=DecodeStatus.CORRECTED,
            corrected_bit=roots[0],
            corrected_bits_pair=tuple(sorted(roots)),
        )

    # ------------------------------------------------------------------
    def flip(self, word: int, bit: int) -> int:
        """Return ``word`` with codeword bit ``bit`` flipped (test helper)."""
        if not (0 <= bit < self.codeword_bits):
            raise EccError(f"bit {bit!r} outside codeword of {self.codeword_bits} bits")
        return word ^ (1 << bit)
