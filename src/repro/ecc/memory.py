"""An ECC-protected memory array built on the real SECDED codec.

Bridges the analytic UBER model (Section 6.2.2) and the concrete
:class:`~repro.ecc.hamming.HammingSECDED` codec: store data words, inject
retention failures (by profile or at a raw bit error rate), scrub, and
count corrected vs uncorrectable words.  The test suite uses it to verify
empirically that the binomial Eq-6 model predicts what the codec actually
experiences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from .. import rng as rng_mod
from ..errors import ConfigurationError, EccError
from .hamming import DecodeStatus, HammingSECDED


@dataclass(frozen=True)
class ScrubOutcome:
    """Result of one full scrub pass."""

    words_scanned: int
    words_clean: int
    words_corrected: int
    words_uncorrectable: int

    @property
    def uncorrectable_fraction(self) -> float:
        if self.words_scanned == 0:
            return 0.0
        return self.words_uncorrectable / self.words_scanned


class EccProtectedMemory:
    """A codec-protected word array with bit-level fault injection.

    Defaults to SECDED; any codec with ``encode``/``decode``/``flip`` and
    ``codeword_bits``/``data_bits`` works (e.g. the double-error-correcting
    :class:`~repro.ecc.bch.BCHDEC`).
    """

    def __init__(
        self,
        n_words: int,
        data_bits: int = 64,
        seed: int = rng_mod.DEFAULT_SEED,
        codec=None,
    ) -> None:
        if n_words <= 0:
            raise ConfigurationError("n_words must be positive")
        self.codec = codec if codec is not None else HammingSECDED(data_bits)
        if self.codec.data_bits != data_bits:
            raise ConfigurationError(
                f"codec data width {self.codec.data_bits} does not match data_bits {data_bits}"
            )
        self.n_words = n_words
        self.data_bits = data_bits
        self._rng = rng_mod.derive(seed, "ecc-memory")
        self._stored: List[int] = [0] * n_words
        self._golden: List[int] = [0] * n_words

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write(self, index: int, data: int) -> None:
        self._check_index(index)
        word = self.codec.encode(data)
        self._stored[index] = word
        self._golden[index] = data

    def fill_random(self) -> None:
        """Write random data into every word."""
        for index in range(self.n_words):
            data = int(self._rng.integers(0, 1 << min(self.data_bits, 62), dtype=np.int64))
            self.write(index, data)

    def read(self, index: int):
        """Decode one word; returns the :class:`DecodeResult`."""
        self._check_index(index)
        return self.codec.decode(self._stored[index])

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_cell_failures(self, cells: Iterable[int]) -> int:
        """Flip specific codeword bits, addressed as flat bit indices.

        Bit ``i`` lives in word ``i // codeword_bits`` at position
        ``i % codeword_bits`` -- the layout a retention profile over an
        ECC-protected array maps to.  Returns the number of flips applied.
        """
        flips = 0
        width = self.codec.codeword_bits
        for cell in cells:
            index = int(cell) // width
            bit = int(cell) % width
            if index >= self.n_words:
                raise ConfigurationError(f"cell {cell} beyond the array")
            self._stored[index] = self.codec.flip(self._stored[index], bit)
            flips += 1
        return flips

    def inject_random_failures(self, rber: float) -> int:
        """Flip each codeword bit independently with probability ``rber``."""
        if not (0.0 <= rber <= 1.0):
            raise ConfigurationError("rber must lie in [0, 1]")
        width = self.codec.codeword_bits
        total_bits = self.n_words * width
        n_flips = int(self._rng.binomial(total_bits, rber))
        positions = self._rng.choice(total_bits, size=n_flips, replace=False)
        self.inject_cell_failures(int(p) for p in positions)
        return n_flips

    # ------------------------------------------------------------------
    # Scrubbing
    # ------------------------------------------------------------------
    def scrub(self, repair: bool = True) -> ScrubOutcome:
        """Decode every word; optionally rewrite corrected/clean words.

        Uncorrectable words are left untouched (the system would raise a
        machine check); corrected words are re-encoded from the recovered
        data, clearing the single-bit error.
        """
        clean = corrected = uncorrectable = 0
        for index in range(self.n_words):
            result = self.codec.decode(self._stored[index])
            if result.status is DecodeStatus.OK:
                clean += 1
            elif result.status is DecodeStatus.CORRECTED:
                corrected += 1
                if repair:
                    self._stored[index] = self.codec.encode(result.data)
            else:
                uncorrectable += 1
        return ScrubOutcome(
            words_scanned=self.n_words,
            words_clean=clean,
            words_corrected=corrected,
            words_uncorrectable=uncorrectable,
        )

    def verify_against_golden(self) -> int:
        """Count words whose decoded data no longer matches what was written.

        Silent data corruption: an uncorrectable (or miscorrected) word
        whose decode differs from the original data.
        """
        mismatches = 0
        for index in range(self.n_words):
            if self.codec.decode(self._stored[index]).data != self._golden[index]:
                mismatches += 1
        return mismatches

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.n_words):
            raise ConfigurationError(f"word index {index} out of range [0, {self.n_words})")
