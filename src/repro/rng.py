"""Deterministic random-number management.

All stochastic components of the simulator (retention-time sampling, VRT
episode arrival, data-pattern alignment draws, thermal noise, workload
generation) draw from :class:`numpy.random.Generator` instances derived from
a single experiment seed.  Derivation is *keyed*: a component asks for a
stream named by a tuple of strings/ints, and the same (seed, key) pair always
yields the same stream regardless of the order in which components are
constructed.  This keeps large experiments reproducible while letting
independent components evolve without perturbing each other's draws.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

KeyPart = Union[str, int, bytes]

#: Default seed used when a component is constructed without an explicit one.
DEFAULT_SEED = 0x5EED


def _digest(seed: int, parts: tuple) -> int:
    """Hash ``(seed, *parts)`` into a 128-bit integer seed."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(int(seed)).encode("utf-8"))
    for part in parts:
        if isinstance(part, bytes):
            raw = part
        else:
            raw = str(part).encode("utf-8")
        hasher.update(b"\x00")
        hasher.update(raw)
    return int.from_bytes(hasher.digest(), "big")


def derive(seed: int, *parts: KeyPart) -> np.random.Generator:
    """Return a generator for the stream identified by ``(seed, *parts)``.

    >>> a = derive(7, "chip", 0)
    >>> b = derive(7, "chip", 0)
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(_digest(seed, parts))


def derive_seed(seed: int, *parts: KeyPart) -> int:
    """Return a plain integer sub-seed for the stream ``(seed, *parts)``.

    Useful when a component wants to further derive its own sub-streams.
    """
    return _digest(seed, parts)


def fingerprint(seed: int, *parts: KeyPart) -> str:
    """Return a short stable hex fingerprint of ``(seed, *parts)``.

    The digest is the same 128-bit hash :func:`derive` seeds its streams
    from, rendered as 32 hex characters.  Used wherever a configuration
    needs a filesystem- and JSON-friendly identity: work-unit ids, run
    directory manifests, cache keys.

    >>> fingerprint(7, "chip", 0) == fingerprint(7, "chip", 0)
    True
    """
    return format(_digest(seed, parts), "032x")
