"""DRAM chip geometry and cell addressing.

A chip is a hierarchy of banks, each a 2-D array of rows and columns
(Section 2.1).  Cells are identified either by a structured
:class:`CellAddress` or by a flat integer index; the mapping between the two
is a bijection used throughout the simulator (failure sets are stored as flat
indices for compactness, mitigation mechanisms reason in rows and banks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from ..errors import ConfigurationError

GIBIBIT = 1 << 30


class CellAddress(NamedTuple):
    """Structured address of a single DRAM cell."""

    bank: int
    row: int
    col: int


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class ChipGeometry:
    """Physical organization of a DRAM chip.

    Defaults mirror the paper's evaluated configuration (Table 2): 8 banks,
    2 KB row buffer (16384 bits per row), and a power-of-two row count that
    sets the chip capacity.
    """

    banks: int = 8
    rows_per_bank: int = 65536
    bits_per_row: int = 16384

    def __post_init__(self) -> None:
        for field_name in ("banks", "rows_per_bank", "bits_per_row"):
            value = getattr(self, field_name)
            if not _is_power_of_two(value):
                raise ConfigurationError(
                    f"{field_name} must be a positive power of two, got {value!r}"
                )

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def bits_per_bank(self) -> int:
        return self.rows_per_bank * self.bits_per_row

    @property
    def capacity_bits(self) -> int:
        return self.banks * self.bits_per_bank

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_bits // 8

    @property
    def capacity_gigabits(self) -> float:
        return self.capacity_bits / GIBIBIT

    @property
    def total_rows(self) -> int:
        return self.banks * self.rows_per_bank

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def flatten(self, address: CellAddress) -> int:
        """Map a structured address to its flat index."""
        bank, row, col = address
        if not (0 <= bank < self.banks):
            raise ConfigurationError(f"bank {bank} out of range [0, {self.banks})")
        if not (0 <= row < self.rows_per_bank):
            raise ConfigurationError(f"row {row} out of range [0, {self.rows_per_bank})")
        if not (0 <= col < self.bits_per_row):
            raise ConfigurationError(f"col {col} out of range [0, {self.bits_per_row})")
        return (bank * self.rows_per_bank + row) * self.bits_per_row + col

    def decompose(self, flat: int) -> CellAddress:
        """Map a flat index back to its structured address."""
        if not (0 <= flat < self.capacity_bits):
            raise ConfigurationError(f"flat index {flat} out of range [0, {self.capacity_bits})")
        col = flat % self.bits_per_row
        row_global = flat // self.bits_per_row
        row = row_global % self.rows_per_bank
        bank = row_global // self.rows_per_bank
        return CellAddress(bank=bank, row=row, col=col)

    def row_of(self, flat: int) -> int:
        """Global row index (bank-major) containing the flat cell index."""
        if not (0 <= flat < self.capacity_bits):
            raise ConfigurationError(f"flat index {flat} out of range [0, {self.capacity_bits})")
        return flat // self.bits_per_row

    @classmethod
    def from_capacity_gigabits(
        cls,
        gigabits: float,
        banks: int = 8,
        bits_per_row: int = 16384,
    ) -> "ChipGeometry":
        """Construct the geometry of a chip with the given capacity.

        The paper evaluates chips from 8 Gb to 64 Gb; small fractional
        capacities (e.g. 1/16 Gb) are handy for fast unit tests.
        """
        total_bits = gigabits * GIBIBIT
        rows = total_bits / (banks * bits_per_row)
        rows_int = int(round(rows))
        if rows_int <= 0 or abs(rows - rows_int) > 1e-9 or not _is_power_of_two(rows_int):
            raise ConfigurationError(
                f"capacity {gigabits!r} Gb does not yield a power-of-two row count "
                f"with {banks} banks x {bits_per_row} bits/row (got {rows!r} rows)"
            )
        return cls(banks=banks, rows_per_bank=rows_int, bits_per_row=bits_per_row)
