"""Fleet-batched failure evaluation: many chips per numpy call.

A characterization campaign runs the *same* measurement schedule on every
chip: the same patterns, the same refresh intervals, the same ambient
trajectory.  Per chip, one read-out costs a handful of numpy calls over a
weak tail of only a few hundred cells -- small enough that per-call
overhead, not arithmetic, dominates the campaign.  This module amortizes
that overhead across a *fleet*: the weak-cell tails of B chips are stacked
into one struct-of-arrays population (concatenated ``mu``/``sigma``/
susceptibility arrays with per-chip segment offsets), so one profiling
read for B chips at the same (pattern, trefi, temperature) point runs as a
handful of fused numpy/``ndtr`` calls plus per-segment reductions.

Byte-identity contract
----------------------
Fleet evaluation is **byte-identical** to the per-chip path -- the same
cells fail, in the same order, from the same generator states:

* every fused operation is elementwise, and the expressions are the
  per-chip expressions of :mod:`repro.dram.cell` term for term (IEEE
  arithmetic on a concatenated array is bit-equal per segment to the same
  arithmetic on the segments);
* the per-chip retention *scale* (a scalar in the per-chip path) becomes a
  per-cell array built with ``np.repeat``, and ``x * scale`` is bit-equal
  whether ``scale`` broadcasts from a scalar or repeats per element;
* RNG purity: each chip's uniforms are drawn from its own
  ``(seed, chip_id)``-derived read generator, in chip order, directly into
  the chip's segment of one shared buffer (``Generator.random(out=...)``
  fills a contiguous slice with exactly the values -- and leaves exactly
  the generator state -- of a plain ``rng.random(n)``), *before* the fused
  compare.

VRT episodes stay per-chip (each chip owns its episodic process and RNG
stream); :meth:`ChipFleet.read_failures` returns them alongside the fused
static mask so a batch profiler can fold both into its bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import ndtr

from .. import obs
from ..errors import CommandSequenceError, ConfigurationError, ProfilingError
from .cell import (
    _CHERNOFF_Z_MAX,
    _FAST_CACHE_MAX_ENTRIES,
    _FAST_CACHE_MAX_EXPOSURES,
    WeakCellPopulation,
)
from .chip import PendingRead, SimulatedDRAMChip
from .commands import Command, CommandRecord


def _same_arrays(refs: Tuple, arrays: Sequence) -> bool:
    """Identity comparison of two per-chip array tuples (cache pinning)."""
    return len(refs) == len(arrays) and all(a is b for a, b in zip(refs, arrays))


@dataclass
class _FleetPatternState:
    """Memoized per-(pattern, temperature-vector) fused evaluation state.

    The fleet analogue of ``repro.dram.cell._FastPatternState``: ``mu_eff``
    and ``sigma_eff`` are the concatenated scaled effective-retention
    arrays, pinned to the exact per-chip alignment arrays they were built
    from (a DPD redraw or temperature change misses the cache instead of
    reusing stale state).  ``p_by_exposure`` caches finished probability
    vectors per exposure, each pinned to the per-chip stress masks.
    """

    alignment_refs: Tuple[np.ndarray, ...]
    mu_eff: np.ndarray
    sigma_eff: np.ndarray
    p_by_exposure: Dict[float, Tuple[Tuple, np.ndarray]] = field(default_factory=dict)


class FleetPopulation:
    """The stacked weak tails of a batch of chips, evaluated fused.

    Construction concatenates each member population's ``mu_wc_s``,
    ``sigma_s``, and DPD susceptibility arrays; ``offsets[i]:offsets[i+1]``
    is chip ``i``'s segment in every concatenated array (and in the boolean
    failure masks :meth:`sample_failures` returns).
    """

    def __init__(
        self,
        populations: Sequence[WeakCellPopulation],
        backing: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        members = tuple(populations)
        if not members:
            raise ConfigurationError("a fleet population needs at least one member")
        self._members = members
        lengths = np.array([len(p) for p in members], dtype=np.int64)
        self._lengths = lengths
        self._offsets = np.zeros(len(members) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self._offsets[1:])
        self._n_total = int(self._offsets[-1])
        if backing is not None:
            # Zero-copy: the members' per-chip arrays are adjacent slices of
            # one shared-memory segment, so the concatenated arrays already
            # exist -- ``backing`` hands them over without a copy.  Values
            # (and therefore results) are identical to concatenation.
            if any(len(backing[k]) != self._n_total for k in ("mu_wc_s", "sigma_s", "susceptibility")):
                raise ConfigurationError(
                    "fleet backing arrays do not cover the member populations"
                )
            self._mu_wc = backing["mu_wc_s"]
            self._sigma = backing["sigma_s"]
            self._susceptibility = backing["susceptibility"]
        else:
            self._mu_wc = np.concatenate([p.mu_wc_s for p in members])
            self._sigma = np.concatenate([p.sigma_s for p in members])
            self._susceptibility = np.concatenate(
                [p.dpd.susceptibility for p in members]
            )
        # (1 - s) is a loop invariant of the effective-retention expression;
        # dividing by the precomputed array is the same IEEE divide as
        # dividing by the expression, so bits are unchanged.
        self._one_minus_s = 1.0 - self._susceptibility
        self._u = np.empty(self._n_total, dtype=np.float64)
        # Scratch buffers for the fused elementwise pipelines: `out=`-chained
        # ufuncs apply the exact same operations as the operator expressions
        # (bit-identical results) without reallocating multi-hundred-KB
        # temporaries on every read.
        self._z = np.empty(self._n_total, dtype=np.float64)
        self._scratch = np.empty(self._n_total, dtype=np.float64)
        self._states: Dict[Tuple[str, Tuple[float, ...]], _FleetPatternState] = {}
        self._scale_cells_memo: Dict[Tuple[float, ...], np.ndarray] = {}
        self._sigma_eff_memo: Dict[Tuple[float, ...], np.ndarray] = {}
        #: pattern_key -> (alignment refs, unscaled concatenated mu_eff).
        #: The DPD term depends only on the alignment draw, not on
        #: temperature, so it survives across scale states.
        self._mu_unscaled: Dict[str, Tuple[Tuple[np.ndarray, ...], np.ndarray]] = {}
        #: pattern_key -> (stress-mask refs, concatenated stress mask).
        self._stressed_memo: Dict[str, Tuple[Tuple, Optional[np.ndarray]]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_total

    @property
    def n_chips(self) -> int:
        return len(self._members)

    @property
    def offsets(self) -> np.ndarray:
        """Per-chip segment offsets into every concatenated array."""
        return self._offsets

    def segment(self, chip_index: int) -> Tuple[int, int]:
        """Chip ``chip_index``'s (start, end) slice bounds."""
        return int(self._offsets[chip_index]), int(self._offsets[chip_index + 1])

    def member_indices(self, chip_index: int) -> np.ndarray:
        """Chip ``chip_index``'s sorted weak-cell flat indices."""
        return self._members[chip_index].indices

    def invalidate_cache(self) -> None:
        """Drop every memoized fused evaluation state."""
        self._states.clear()
        self._scale_cells_memo.clear()
        self._sigma_eff_memo.clear()
        self._mu_unscaled.clear()
        self._stressed_memo.clear()

    # ------------------------------------------------------------------
    # Fused evaluation building blocks
    # ------------------------------------------------------------------
    def _scale_cells(self, scales: Tuple[float, ...]) -> np.ndarray:
        """Per-cell retention scale: chip ``i``'s scalar repeated over its
        segment.  Multiplying by it is bit-equal to the per-chip scalar
        multiply."""
        cells = self._scale_cells_memo.get(scales)
        if cells is None:
            cells = np.repeat(np.asarray(scales, dtype=np.float64), self._lengths)
            if len(self._scale_cells_memo) >= _FAST_CACHE_MAX_ENTRIES:
                self._scale_cells_memo.clear()
            self._scale_cells_memo[scales] = cells
        return cells

    def _sigma_eff(self, scales: Tuple[float, ...]) -> np.ndarray:
        """Concatenated ``sigma_s * scale`` -- the per-chip expression."""
        sigma_eff = self._sigma_eff_memo.get(scales)
        if sigma_eff is None:
            sigma_eff = self._sigma * self._scale_cells(scales)
            if len(self._sigma_eff_memo) >= _FAST_CACHE_MAX_ENTRIES:
                self._sigma_eff_memo.clear()
            self._sigma_eff_memo[scales] = sigma_eff
        return sigma_eff

    def _effective_retention(
        self, alignment: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Concatenated DPD effective retention -- the per-chip expression
        ``mu_wc_s * (1 - s*a) / (1 - s)`` term for term.

        Every step is the same ufunc the operator expression would invoke
        (multiplication commutes bitwise under IEEE 754), so chaining them
        through one buffer changes allocations, not results.  With ``out``
        the caller's scratch buffer is used; without, one array is
        allocated and returned.
        """
        tmp = np.multiply(self._susceptibility, alignment, out=out)
        np.subtract(1.0, tmp, out=tmp)
        np.multiply(self._mu_wc, tmp, out=tmp)
        return np.divide(tmp, self._one_minus_s, out=tmp)

    def _concat_optional(
        self, arrays: "Sequence[Optional[np.ndarray]] | np.ndarray"
    ) -> Optional[np.ndarray]:
        if isinstance(arrays, np.ndarray):
            # Already stacked over the fleet (megakernel batched rows).
            return arrays
        present = [a is not None for a in arrays]
        if not any(present):
            return None
        if not all(present):
            raise ConfigurationError(
                "fleet chips disagree on stress-mask availability; all chips "
                "must model orientation or none"
            )
        return np.concatenate(arrays)

    def _draw_uniforms(self, rngs: Sequence[np.random.Generator]) -> np.ndarray:
        """One full-tail uniform draw per chip, in chip order, into the
        shared buffer.  Each generator consumes exactly the values (and
        ends in exactly the state) the per-chip path would produce."""
        u = self._u
        offsets = self._offsets
        for i, rng in enumerate(rngs):
            start, end = offsets[i], offsets[i + 1]
            if end > start:
                rng.random(out=u[start:end])
        return u

    def _unscaled_mu(
        self, pattern_key: str, alignments: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Concatenated effective retention *before* temperature scaling,
        memoized per pattern and pinned to the per-chip alignment arrays.
        The DPD term is a pure function of the alignment draw, so it is
        shared across every temperature state built from the same draw."""
        entry = self._mu_unscaled.get(pattern_key)
        if entry is not None and _same_arrays(entry[0], alignments):
            return entry[1]
        mu = self._effective_retention(np.concatenate(alignments))
        if len(self._mu_unscaled) >= _FAST_CACHE_MAX_ENTRIES:
            self._mu_unscaled.clear()
        self._mu_unscaled[pattern_key] = (tuple(alignments), mu)
        return mu

    def _concat_stressed(
        self, pattern_key: str, stresseds: Sequence[Optional[np.ndarray]]
    ) -> Optional[np.ndarray]:
        """Concatenated stress mask, memoized per pattern and pinned to the
        per-chip mask arrays (deterministic patterns reuse their masks)."""
        entry = self._stressed_memo.get(pattern_key)
        if entry is not None and _same_arrays(entry[0], stresseds):
            return entry[1]
        stressed = self._concat_optional(stresseds)
        if len(self._stressed_memo) >= _FAST_CACHE_MAX_ENTRIES:
            self._stressed_memo.clear()
        self._stressed_memo[pattern_key] = (tuple(stresseds), stressed)
        return stressed

    def _pattern_state(
        self,
        pattern_key: str,
        scales: Tuple[float, ...],
        alignments: Sequence[np.ndarray],
    ) -> _FleetPatternState:
        key = (pattern_key, scales)
        state = self._states.get(key)
        if state is not None and _same_arrays(state.alignment_refs, alignments):
            return state
        state = _FleetPatternState(
            alignment_refs=tuple(alignments),
            mu_eff=self._unscaled_mu(pattern_key, alignments)
            * self._scale_cells(scales),
            sigma_eff=self._sigma_eff(scales),
        )
        if len(self._states) >= _FAST_CACHE_MAX_ENTRIES:
            self._states.clear()
        self._states[key] = state
        return state

    # ------------------------------------------------------------------
    # Fused sampling
    # ------------------------------------------------------------------
    def sample_failures(
        self,
        exposure_s: float,
        scales: Sequence[float],
        alignments: Sequence[np.ndarray],
        stresseds: Sequence[Optional[np.ndarray]],
        rngs: Sequence[np.random.Generator],
        pattern_key: Optional[str] = None,
        stochastic: bool = True,
    ) -> np.ndarray:
        """Bernoulli-sample one fleet read-out as a fused pass.

        ``scales``/``alignments``/``stresseds``/``rngs`` are per-chip, in
        fleet order.  Returns a boolean mask over the concatenated cell
        space; chip ``i``'s segment is bit-equal to the ``failed`` mask its
        own :meth:`~repro.dram.cell.WeakCellPopulation.sample_failures`
        would have produced (fast or reference mode -- they are identical).
        """
        if len(alignments) != self.n_chips or len(rngs) != self.n_chips:
            raise ConfigurationError("per-chip inputs must match the fleet size")
        if exposure_s < 0.0:
            raise ConfigurationError(f"exposure must be non-negative, got {exposure_s!r}")
        scales = tuple(float(s) for s in scales)
        if exposure_s == 0.0:
            # The per-chip path draws uniforms even for a zero exposure;
            # match it so every generator state stays aligned.
            self._draw_uniforms(rngs)
            return np.zeros(self._n_total, dtype=bool)
        if pattern_key is not None and not stochastic:
            return self._sample_deterministic(
                exposure_s, scales, pattern_key, alignments, stresseds, rngs
            )
        return self._sample_banded(exposure_s, scales, alignments, stresseds, rngs)

    def deterministic_p(
        self,
        exposure_s: float,
        scales: Tuple[float, ...],
        pattern_key: str,
        alignments: Sequence[np.ndarray],
        stresseds: Sequence[Optional[np.ndarray]],
    ) -> np.ndarray:
        """The fused per-cell failure-probability vector for a deterministic
        pattern at one exposure, memoized and pinned to the exact per-chip
        alignment/stress arrays.  Comparing chip-ordered uniforms against it
        is one read-out; the megakernel stacks these vectors row-wise to
        evaluate a whole condition grid per chip in one compare."""
        state = self._pattern_state(pattern_key, scales, alignments)
        key = float(exposure_s)
        entry = state.p_by_exposure.get(key)
        if entry is None or not _same_arrays(entry[0], stresseds):
            # One fused ndtr pass -- the per-chip expression, term for term,
            # with the z pipeline staged through the scratch buffer.
            z = np.subtract(exposure_s, state.mu_eff, out=self._z)
            np.divide(z, state.sigma_eff, out=z)
            p = ndtr(z)
            stressed = self._concat_stressed(pattern_key, stresseds)
            if stressed is not None:
                np.multiply(p, stressed, out=p)
            if len(state.p_by_exposure) >= _FAST_CACHE_MAX_EXPOSURES:
                state.p_by_exposure.clear()
            entry = (tuple(stresseds), p)
            state.p_by_exposure[key] = entry
        return entry[1]

    def deterministic_p_grid(
        self,
        exposures_s: Sequence[float],
        scales: Tuple[float, ...],
        pattern_key: str,
        alignments: Sequence[np.ndarray],
        stresseds: Sequence[Optional[np.ndarray]],
    ) -> np.ndarray:
        """Stacked :meth:`deterministic_p` rows for many exposures at once.

        Returns a ``(len(exposures_s), n_total)`` matrix whose row ``k`` is
        bit-equal to ``deterministic_p(exposures_s[k], ...)``: the z
        pipeline and ndtr are elementwise ufuncs, so evaluating them on a
        broadcast matrix applies the identical scalar operation to the
        identical operands.  One ndtr call amortizes the per-row dispatch
        overhead the megakernel would otherwise pay once per read (row
        exposures are distinct floats -- each accumulates its own clock
        error -- so the per-exposure memo cannot help there).
        """
        state = self._pattern_state(pattern_key, scales, alignments)
        p = np.subtract(
            np.asarray(exposures_s, dtype=np.float64)[:, None], state.mu_eff
        )
        np.divide(p, state.sigma_eff, out=p)
        ndtr(p, out=p)
        stressed = self._concat_stressed(pattern_key, stresseds)
        if stressed is not None:
            np.multiply(p, stressed, out=p)
        return p

    def _sample_deterministic(
        self,
        exposure_s: float,
        scales: Tuple[float, ...],
        pattern_key: str,
        alignments: Sequence[np.ndarray],
        stresseds: Sequence[Optional[np.ndarray]],
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Memoized fused probability-vector sampling (deterministic
        patterns): the fleet analogue of ``_sample_deterministic_fast``."""
        p = self.deterministic_p(exposure_s, scales, pattern_key, alignments, stresseds)
        return self._draw_uniforms(rngs) < p

    def _sample_banded(
        self,
        exposure_s: float,
        scales: Tuple[float, ...],
        alignments: Sequence[np.ndarray],
        stresseds: Sequence[Optional[np.ndarray]],
        rngs: Sequence[np.random.Generator],
        u: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fused Chernoff-cut sampling (stochastic patterns): the fleet
        analogue of ``_sample_banded_fast``, candidates gathered globally.

        ``u`` optionally supplies the chip-ordered uniforms (the megakernel
        gathers them from per-chip block draws -- value-identical to the
        per-read draw, so the compare is unchanged); without it each chip's
        read generator is consumed in fleet order as usual."""
        scale_cells = self._scale_cells(scales)
        alignment = (
            alignments
            if isinstance(alignments, np.ndarray)
            else np.concatenate(alignments)
        )
        # Stage the whole z pipeline through the two scratch buffers: each
        # step is the ufunc the operator expression would invoke, applied
        # in the same order, so the bits are unchanged.
        mu_eff = self._effective_retention(alignment, out=self._scratch)
        np.multiply(mu_eff, scale_cells, out=mu_eff)
        z = np.subtract(exposure_s, mu_eff, out=self._z)
        np.divide(z, self._sigma_eff(scales), out=z)
        if u is None:
            u = self._draw_uniforms(rngs)
        # Clamp the exponent exactly like the per-chip path: deep-tail
        # cells would otherwise push exp() into the subnormal slow path.
        # ``-0.5 * z * z`` associates left, so stage it as (-0.5 * z) * z;
        # mu_eff is dead here, freeing its scratch buffer for the bound.
        bound = np.multiply(-0.5, z, out=self._scratch)
        np.multiply(bound, z, out=bound)
        np.maximum(bound, -60.0, out=bound)
        np.exp(bound, out=bound)
        np.multiply(0.5, bound, out=bound)
        candidates = np.flatnonzero((z > _CHERNOFF_Z_MAX) | (u < bound))
        failed = np.zeros(self._n_total, dtype=bool)
        if len(candidates):
            p = ndtr(z[candidates])
            stressed = self._concat_optional(stresseds)
            if stressed is not None:
                p = p * stressed[candidates]
            failed[candidates] = u[candidates] < p
        return failed


class ChipFleet:
    """A batch of chips driven through one command sequence together.

    Every command method fans out to each member chip in fleet order (so
    clocks, traces, VRT processes, and DPD draws evolve exactly as they
    would standalone); only the read-out *evaluation* is fused through the
    shared :class:`FleetPopulation`.

    Member chips must share geometry and ``max_trefi_s`` -- a fleet read
    asserts that every chip reached the same exposure, which holds exactly
    when the chips traverse identical clock trajectories.
    """

    def __init__(
        self,
        chips: Sequence["SimulatedDRAMChip"],
        backing: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        members = tuple(chips)
        if not members:
            raise ConfigurationError("a chip fleet needs at least one chip")
        geometry = members[0].geometry
        max_trefi = members[0].max_trefi_s
        for chip in members[1:]:
            if chip.geometry != geometry:
                raise ConfigurationError(
                    "fleet chips must share one geometry; got "
                    f"{chip.geometry!r} vs {geometry!r}"
                )
            if chip.max_trefi_s != max_trefi:
                raise ConfigurationError(
                    "fleet chips must share one max_trefi_s; got "
                    f"{chip.max_trefi_s!r} vs {max_trefi!r}"
                )
        self.chips = members
        self.population = FleetPopulation(
            [chip.population for chip in members], backing=backing
        )
        self._io_seconds = members[0].pattern_io_seconds
        self._max_trefi_s = max_trefi

    def __len__(self) -> int:
        return len(self.chips)

    @property
    def max_trefi_s(self) -> float:
        return self.chips[0].max_trefi_s

    # ------------------------------------------------------------------
    # Lockstep command interface
    # ------------------------------------------------------------------
    # Fleet chips traverse identical command trajectories (enforced by the
    # clock/exposure divergence guards), so each command's bookkeeping --
    # the new clock value, the exposure accounting, the trace record -- is
    # computed once and applied to every member, while the per-chip RNG
    # consumers (VRT arrival sync, DPD excitation, read uniforms) still run
    # on each chip's own generators in fleet order.  This mirrors
    # ``SimulatedDRAMChip``'s command methods statement for statement; the
    # equivalence tests pin the two implementations to identical clocks,
    # traces, generator states, and profiles.  When instrumentation is
    # recording, commands fall back to the per-chip methods so per-chip
    # telemetry counters stay exact.

    def _advance_all(self, seconds: float) -> float:
        chips = self.chips
        now = chips[0].clock.advance(seconds)
        for chip in chips[1:]:
            if chip.clock.advance(seconds) != now:
                raise ProfilingError(
                    "fleet chips diverged: clocks disagree after a lockstep "
                    "advance; fleet commands require identical command/clock "
                    "trajectories per chip"
                )
        return now

    def _now_all(self) -> float:
        chips = self.chips
        now = chips[0].clock.now
        for chip in chips[1:]:
            if chip.clock.now != now:
                raise ProfilingError(
                    "fleet chips diverged: clocks disagree; fleet commands "
                    "require identical command/clock trajectories per chip"
                )
        return now

    def write_pattern(self, pattern) -> None:
        if obs.enabled():
            for chip in self.chips:
                chip.write_pattern(pattern)
            return
        now = self._advance_all(self._io_seconds)
        record = CommandRecord(time=now, command=Command.WRITE_PATTERN, detail=pattern.key)
        for chip in self.chips:
            chip.vrt.advance_to(now, chip._temperature_c)
            chip._pattern = pattern
            chip._alignment, chip._stressed = chip.population.dpd.excite(pattern)
            if not chip._refresh_enabled:
                chip._disable_time = now
            chip._frozen_exposure = 0.0
            chip.trace.records.append(record)

    def disable_refresh(self) -> None:
        if obs.enabled():
            for chip in self.chips:
                chip.disable_refresh()
            return
        now = self._now_all()
        record = CommandRecord(time=now, command=Command.REFRESH_DISABLE)
        for chip in self.chips:
            if not chip._refresh_enabled:
                raise CommandSequenceError("refresh is already disabled")
            chip._refresh_enabled = False
            chip._disable_time = now
            chip.trace.records.append(record)

    def enable_refresh(self) -> None:
        if obs.enabled():
            for chip in self.chips:
                chip.enable_refresh()
            return
        now = self._now_all()
        record = CommandRecord(time=now, command=Command.REFRESH_ENABLE)
        for chip in self.chips:
            if chip._refresh_enabled:
                raise CommandSequenceError("refresh is already enabled")
            assert chip._disable_time is not None
            chip._frozen_exposure = now - chip._disable_time
            chip._refresh_enabled = True
            chip._disable_time = None
            chip.trace.records.append(record)

    def wait(self, seconds: float) -> None:
        if obs.enabled():
            for chip in self.chips:
                chip.wait(seconds)
            return
        now = self._advance_all(seconds)
        record = CommandRecord(time=now, command=Command.WAIT, detail=f"{seconds:.6f}s")
        for chip in self.chips:
            chip.vrt.advance_to(now, chip._temperature_c)
            chip.trace.records.append(record)

    # ------------------------------------------------------------------
    # Fused read-out
    # ------------------------------------------------------------------
    def _begin_read_lockstep(self) -> Tuple[float, float]:
        """One read-compare's command work for the whole fleet.

        Mirrors :meth:`SimulatedDRAMChip.begin_read` per chip -- clock
        advance, VRT sync, exposure accounting, bound check, trace record,
        exposure restart -- with the shared bookkeeping computed once.
        Returns ``(exposure_s, read_at_s)``.
        """
        now = self._advance_all(self._io_seconds)
        max_trefi = self._max_trefi_s
        exposure = 0.0
        record: Optional[CommandRecord] = None
        for chip in self.chips:
            if chip._pattern is None or chip._alignment is None:
                raise CommandSequenceError("no data pattern has been written")
            chip.vrt.advance_to(now, chip._temperature_c)
            if not chip._refresh_enabled and chip._disable_time is not None:
                chip_exposure = now - chip._disable_time
            else:
                chip_exposure = chip._frozen_exposure
            if record is None:
                exposure = chip_exposure
                # Tolerate float accumulation error at the exact boundary.
                if exposure > max_trefi * (1.0 + 1e-9):
                    raise ConfigurationError(
                        f"exposure {exposure:.3f}s exceeds max_trefi_s={max_trefi!r}; "
                        "construct the chip with a larger max_trefi_s"
                    )
                record = CommandRecord(
                    time=now,
                    command=Command.READ_COMPARE,
                    detail=f"exposure={exposure:.6f}s",
                )
            elif chip_exposure != exposure:
                raise ProfilingError(
                    "fleet chips diverged: exposures "
                    f"{chip_exposure!r} vs {exposure!r}; fleet reads "
                    "require identical command/clock trajectories per chip"
                )
            chip.trace.records.append(record)
            # Reading through the sense amplifiers restores the cells.
            if not chip._refresh_enabled:
                chip._disable_time = now
            chip._frozen_exposure = 0.0
        return exposure, now

    def read_failures(
        self,
    ) -> Tuple[np.ndarray, List[Tuple[int, np.ndarray]]]:
        """One fused read-compare across the fleet.

        Returns ``(static_mask, vrt_failures)``: a boolean mask over the
        concatenated weak-cell space (chip ``i``'s segment bit-equal to its
        standalone read) and the per-chip VRT failing-cell arrays as
        ``(chip_index, sorted flat indices)`` pairs, only for chips with at
        least one active episode.
        """
        if obs.enabled():
            return self._read_failures_traced()
        exposure, read_at = self._begin_read_lockstep()
        chips = self.chips
        lead_pattern = chips[0]._pattern
        scales = tuple(
            chip.population.retention_scale(chip._temperature_c) for chip in chips
        )
        mask = self.population.sample_failures(
            exposure,
            scales,
            [chip._alignment for chip in chips],
            [chip._stressed for chip in chips],
            [chip.read_rng for chip in chips],
            pattern_key=lead_pattern.key,
            stochastic=lead_pattern.stochastic,
        )
        vrt: List[Tuple[int, np.ndarray]] = []
        for i, chip in enumerate(chips):
            cells = chip.vrt.failing_cells(read_at, exposure)
            if len(cells):
                vrt.append((i, cells))
        return mask, vrt

    def _read_failures_traced(
        self,
    ) -> Tuple[np.ndarray, List[Tuple[int, np.ndarray]]]:
        """Per-chip :meth:`~SimulatedDRAMChip.begin_read` fan-out -- the
        instrumented path, identical results with exact per-chip counters."""
        pendings: List[PendingRead] = [chip.begin_read() for chip in self.chips]
        exposure = pendings[0].exposure_s
        for pending in pendings[1:]:
            if pending.exposure_s != exposure:
                raise ProfilingError(
                    "fleet chips diverged: exposures "
                    f"{pending.exposure_s!r} vs {exposure!r}; fleet reads "
                    "require identical command/clock trajectories per chip"
                )
        scales = tuple(
            chip.population.retention_scale(pending.temperature_c)
            for chip, pending in zip(self.chips, pendings)
        )
        mask = self.population.sample_failures(
            exposure,
            scales,
            [pending.alignment for pending in pendings],
            [pending.stressed for pending in pendings],
            [chip.read_rng for chip in self.chips],
            pattern_key=pendings[0].pattern_key,
            stochastic=pendings[0].stochastic,
        )
        vrt: List[Tuple[int, np.ndarray]] = []
        for i, (chip, pending) in enumerate(zip(self.chips, pendings)):
            cells = chip.vrt.failing_cells(pending.read_at_s, pending.exposure_s)
            if len(cells):
                vrt.append((i, cells))
        return mask, vrt
