"""Sampling of the weak retention-time tail of a chip.

A real chip has billions of cells, the overwhelming majority of which retain
data far longer than any refresh interval a profiler would ever test.  Only
the *weak tail* -- cells whose worst-case retention time falls below a
configurable horizon -- can ever produce a retention failure in our
experiments, so only those cells are instantiated, as a vectorized
struct-of-arrays (:class:`WeakCellSample`).

Per Section 5.5 of the paper, each instantiated cell carries:

* ``mu_wc_s`` -- worst-case-data-pattern retention time (the mean of its
  normal failure CDF), drawn from the vendor's lognormal tail;
* ``sigma_s`` -- the standard deviation of its failure CDF, drawn from the
  vendor's lognormal sigma distribution (Figure 6b);
* ``susceptibility`` -- DPD susceptibility ``s`` (how much the stored data
  pattern can degrade its retention);
* ``vrt_flag`` -- whether the cell is VRT-prone (excluded from per-cell CDF
  analyses, as in the paper's footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtri

from ..errors import ConfigurationError
from .vendor import VendorModel


@dataclass
class WeakCellSample:
    """Struct-of-arrays description of a chip's instantiated weak cells.

    All arrays share the same length and ordering; ``indices`` is sorted and
    unique (flat cell addresses within the chip).  ``orientation`` is the
    cell's charged logic value (1 for true-cells, 0 for anti-cells): a cell
    only leaks towards failure while storing its charged value, which is why
    every test pattern must be paired with its inverse (Section 3.2).
    """

    indices: np.ndarray
    mu_wc_s: np.ndarray
    sigma_s: np.ndarray
    susceptibility: np.ndarray
    vrt_flag: np.ndarray
    orientation: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.indices)
        for name in ("mu_wc_s", "sigma_s", "susceptibility", "vrt_flag", "orientation"):
            if len(getattr(self, name)) != n:
                raise ConfigurationError(f"array {name!r} length mismatch with indices")

    def __len__(self) -> int:
        return len(self.indices)


class RetentionSampler:
    """Draws a chip's weak-cell population from a vendor model.

    Sampling happens in reference-temperature (45 degC) space; temperature
    effects are applied at evaluation time by scaling retention times.
    """

    def __init__(self, vendor: VendorModel, rng: np.random.Generator) -> None:
        self._vendor = vendor
        self._rng = rng

    def sample(self, capacity_bits: int, horizon_s: float) -> WeakCellSample:
        """Sample all cells whose worst-case retention lies below ``horizon_s``.

        The number of weak cells is Poisson with mean
        ``capacity_bits * P(retention < horizon)``; their retention times are
        drawn from the lognormal tail truncated at the horizon via inverse-CDF
        sampling.
        """
        if capacity_bits <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bits!r}")
        if horizon_s <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {horizon_s!r}")
        vendor = self._vendor
        rng = self._rng

        p_tail = vendor.weak_cell_probability(horizon_s, temperature_c=45.0)
        expected = capacity_bits * p_tail
        count = int(rng.poisson(expected))
        if count == 0:
            empty_f = np.empty(0, dtype=np.float64)
            return WeakCellSample(
                indices=np.empty(0, dtype=np.int64),
                mu_wc_s=empty_f,
                sigma_s=empty_f.copy(),
                susceptibility=empty_f.copy(),
                vrt_flag=np.empty(0, dtype=bool),
                orientation=np.empty(0, dtype=np.uint8),
            )

        # Weak cells are sparse relative to the full array, so sampling flat
        # addresses with replacement and de-duplicating loses a negligible
        # number of draws.
        indices = np.unique(rng.integers(0, capacity_bits, size=count, dtype=np.int64))
        count = len(indices)

        # Inverse-CDF sampling of the truncated lognormal tail.
        u = rng.uniform(0.0, p_tail, size=count)
        z = ndtri(u)
        mu_wc = np.exp(vendor.retention_ln_median + vendor.retention_ln_sigma * z)

        sigma = rng.lognormal(
            mean=np.log(vendor.cell_sigma_ln_median_s),
            sigma=vendor.cell_sigma_ln_sigma,
            size=count,
        )
        # A cell whose failure-CDF spread rivals its mean would fail at
        # implausibly short intervals; physical sigma is always a small
        # fraction of the retention time (Figure 6), so clip accordingly.
        sigma = np.minimum(sigma, mu_wc / 4.0)

        susceptibility = rng.uniform(0.0, vendor.dpd_susceptibility_max, size=count)
        vrt_flag = rng.random(count) < vendor.vrt_cell_fraction
        # True-cell / anti-cell orientation: which stored logic value holds
        # charge (and therefore leaks).  Real arrays mix both to share sense
        # amplifiers, so a fair coin per cell.
        orientation = rng.integers(0, 2, size=count, dtype=np.uint8)

        # Shuffle breaks the correlation between address order and the
        # inverse-CDF draw order introduced by np.unique's sort.
        order = rng.permutation(count)
        return WeakCellSample(
            indices=indices,
            mu_wc_s=mu_wc[order],
            sigma_s=sigma[order],
            susceptibility=susceptibility[order],
            vrt_flag=vrt_flag[order],
            orientation=orientation[order],
        )
