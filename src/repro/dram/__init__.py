"""Simulated LPDDR4 DRAM substrate.

Stands in for the paper's 368 real chips: cell-level retention behaviour
(lognormal weak tail, per-cell normal failure CDFs), variable retention time
(VRT), data pattern dependence (DPD), vendor-specific temperature scaling,
and a command-level interface with simulated IO latencies.
"""

from .cell import WeakCellPopulation
from .chip import DEFAULT_GEOMETRY, SimulatedDRAMChip
from .commands import Command, CommandRecord, CommandTrace, ProtocolViolation
from .dpd import DPDModel
from .fleet import ChipFleet, FleetPopulation
from .geometry import GIBIBIT, CellAddress, ChipGeometry
from .module import DRAMModule, ModuleCellRef
from .retention import RetentionSampler, WeakCellSample
from .spd import SPDCharacterization, characterize_for_spd
from .timing import IO_SECONDS_PER_GIGABIT, RefreshTimings, pattern_io_seconds, refresh_timings
from .vendor import VENDOR_A, VENDOR_B, VENDOR_C, VENDORS, VendorModel, vendor_by_name
from .vrt import VRTProcess

__all__ = [
    "CellAddress",
    "ChipGeometry",
    "GIBIBIT",
    "Command",
    "CommandRecord",
    "CommandTrace",
    "ProtocolViolation",
    "ChipFleet",
    "DPDModel",
    "FleetPopulation",
    "DRAMModule",
    "ModuleCellRef",
    "DEFAULT_GEOMETRY",
    "SimulatedDRAMChip",
    "RetentionSampler",
    "WeakCellSample",
    "WeakCellPopulation",
    "SPDCharacterization",
    "characterize_for_spd",
    "IO_SECONDS_PER_GIGABIT",
    "RefreshTimings",
    "pattern_io_seconds",
    "refresh_timings",
    "VendorModel",
    "VENDOR_A",
    "VENDOR_B",
    "VENDOR_C",
    "VENDORS",
    "vendor_by_name",
    "VRTProcess",
]
