"""Serial-presence-detect (SPD) characterization summaries.

Section 6.3 of the paper argues that reliable relaxed-refresh operation
needs detailed per-chip characterization data, and that "it would be
reasonable for vendors to provide this data in the on-DIMM serial presence
detect (SPD)".  This module implements that proposal: a compact, checksummed
binary blob carrying exactly the summary statistics a reach-profiling system
needs to pick its operating point -- BER anchors, the temperature
coefficient, the VRT accumulation power law, and the failure-CDF spread.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import asdict, dataclass
from typing import Tuple

from ..conditions import Conditions
from ..errors import ConfigurationError

_MAGIC = b"RSPD"
_VERSION = 1


@dataclass(frozen=True)
class SPDCharacterization:
    """Per-chip retention characterization summary stored in SPD.

    Attributes
    ----------
    vendor:
        Vendor label.
    capacity_gigabits:
        Chip capacity.
    temp_coefficient:
        ``k`` of the Eq-1 failure-rate law ``R ~ e^{k dT}``.
    ber_anchors:
        ``((trefi_s, ber), ...)`` sample points of the BER curve at the
        reference temperature -- "a few sample points around the tradeoff
        space" (Section 6.3).
    vrt_scale_per_hour / vrt_exponent:
        The chip-level accumulation power law ``A(t) = scale * t^exponent``
        in cells/hour.
    sigma_median_s:
        Median per-cell failure-CDF standard deviation (Figure 6b).
    """

    vendor: str
    capacity_gigabits: float
    temp_coefficient: float
    ber_anchors: Tuple[Tuple[float, float], ...]
    vrt_scale_per_hour: float
    vrt_exponent: float
    sigma_median_s: float

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Encode as a checksummed binary SPD blob."""
        payload = json.dumps(asdict(self), sort_keys=True).encode("utf-8")
        header = _MAGIC + struct.pack("<HI", _VERSION, len(payload))
        crc = struct.pack("<I", zlib.crc32(header + payload) & 0xFFFFFFFF)
        return header + payload + crc

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SPDCharacterization":
        """Decode and verify a blob produced by :meth:`to_bytes`."""
        if len(blob) < 14 or blob[:4] != _MAGIC:
            raise ConfigurationError("not an SPD characterization blob")
        version, length = struct.unpack("<HI", blob[4:10])
        if version != _VERSION:
            raise ConfigurationError(f"unsupported SPD version {version!r}")
        if len(blob) != 10 + length + 4:
            raise ConfigurationError("SPD blob length mismatch")
        payload = blob[10 : 10 + length]
        (crc,) = struct.unpack("<I", blob[10 + length :])
        if crc != (zlib.crc32(blob[: 10 + length]) & 0xFFFFFFFF):
            raise ConfigurationError("SPD blob checksum mismatch")
        data = json.loads(payload.decode("utf-8"))
        data["ber_anchors"] = tuple(tuple(a) for a in data["ber_anchors"])
        return cls(**data)

    # ------------------------------------------------------------------
    # Interpolation helpers
    # ------------------------------------------------------------------
    def ber_at(self, trefi_s: float) -> float:
        """Log-log interpolate the BER anchors at a refresh interval."""
        import math

        anchors = sorted(self.ber_anchors)
        if not anchors:
            raise ConfigurationError("SPD blob carries no BER anchors")
        if trefi_s <= anchors[0][0]:
            return anchors[0][1]
        if trefi_s >= anchors[-1][0]:
            return anchors[-1][1]
        for (t0, b0), (t1, b1) in zip(anchors, anchors[1:]):
            if t0 <= trefi_s <= t1:
                if b0 <= 0.0 or b1 <= 0.0:
                    frac = (trefi_s - t0) / (t1 - t0)
                    return b0 + frac * (b1 - b0)
                frac = (math.log(trefi_s) - math.log(t0)) / (math.log(t1) - math.log(t0))
                return math.exp(math.log(b0) + frac * (math.log(b1) - math.log(b0)))
        raise AssertionError("unreachable")  # pragma: no cover

    def accumulation_per_hour(self, trefi_s: float) -> float:
        """Chip-level VRT accumulation rate at a refresh interval."""
        return self.vrt_scale_per_hour * trefi_s**self.vrt_exponent


def characterize_for_spd(chip, anchor_intervals_s: Tuple[float, ...] = (0.128, 0.256, 0.512, 1.024, 2.048)) -> SPDCharacterization:
    """Build the SPD summary a vendor would ship for ``chip``.

    Uses the chip's analytic model (a vendor characterizing its own silicon
    has the luxury of exhaustive testing); anchor intervals are clipped to
    the chip's configured exposure range.
    """
    usable = tuple(t for t in anchor_intervals_s if t <= chip.max_trefi_s)
    if not usable:
        raise ConfigurationError("no anchor interval fits within the chip's max_trefi_s")
    anchors = tuple(
        (t, chip.expected_ber(Conditions(trefi=t, temperature=45.0))) for t in usable
    )
    vendor = chip.vendor
    capacity_gbit = chip.capacity_bits / (1 << 30)
    return SPDCharacterization(
        vendor=vendor.name,
        capacity_gigabits=capacity_gbit,
        temp_coefficient=vendor.failure_rate_temp_coeff,
        ber_anchors=anchors,
        vrt_scale_per_hour=vendor.vrt_arrival_scale_per_gbit_hour * capacity_gbit,
        vrt_exponent=vendor.vrt_arrival_exponent,
        sigma_median_s=vendor.cell_sigma_ln_median_s,
    )
