"""Command-level simulated LPDDR4 DRAM chip.

:class:`SimulatedDRAMChip` is the stand-in for one of the paper's 368 real
chips.  Profilers interact with it exactly the way the paper's SoftMC-style
infrastructure interacts with hardware -- through DRAM commands:

    chip.write_pattern(pattern)     # fill the array with a test pattern
    chip.disable_refresh()
    chip.wait(target_trefi)         # accumulate a retention exposure
    chip.enable_refresh()
    errors = chip.read_errors()     # flat indices of failing cells

Everything costs simulated time (full-array IO latencies from
:mod:`repro.dram.timing`), every command is recorded on a
:class:`~repro.dram.commands.CommandTrace`, and the chip additionally exposes
a ground-truth *oracle* of its failing cells -- something only a simulator
can offer, used to score profiling coverage and false positive rates.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from .. import rng as rng_mod
from ..clock import SimClock
from ..conditions import REFERENCE_TEMPERATURE_C, Conditions
from ..errors import CommandSequenceError, ConfigurationError
from ..patterns import DataPattern
from .cell import WeakCellPopulation
from .commands import Command, CommandTrace
from .dpd import DPDModel
from .geometry import ChipGeometry
from .retention import RetentionSampler, WeakCellSample
from .timing import pattern_io_seconds
from .vendor import VENDOR_B, VendorModel
from .vrt import VRTProcess

#: Default simulated chip capacity: 1 Gbit keeps the weak tail ~1e4 cells.
DEFAULT_GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)

#: Hard upper bound on chip operating temperature.  The weak-cell population
#: is always instantiated with retention headroom out to this temperature so
#: that two chips sharing (vendor, geometry, seed, chip_id, max_trefi_s) have
#: identical populations regardless of their per-instance temperature limits.
MAX_SUPPORTED_TEMPERATURE_C = 60.0


def effective_vendor(vendor: VendorModel, seed: int, chip_id: int) -> VendorModel:
    """The vendor model with this chip's process-variation jitter applied.

    Chip-to-chip process variation: each physical chip gets its own
    retention-tail median, deterministically derived from (seed, chip_id,
    vendor) so same-configuration chips stay reproducible.  This is the
    exact draw :class:`SimulatedDRAMChip` makes at construction, factored
    out so population builders (the shared-memory store) can replicate it
    bit for bit without constructing a chip.
    """
    if vendor.chip_to_chip_ln_sigma > 0.0:
        jitter = float(
            rng_mod.derive(seed, "chip-variation", chip_id, vendor.name).normal(
                0.0, vendor.chip_to_chip_ln_sigma
            )
        )
        vendor = dataclasses.replace(
            vendor, retention_ln_median=vendor.retention_ln_median + jitter
        )
    return vendor


def weak_cell_horizon_s(vendor: VendorModel, max_trefi_s: float) -> float:
    """Weak-tail sampling horizon in reference-temperature space.

    Hotter operation shrinks retention times, pulling more of the tail below
    ``max_trefi_s``.  The headroom always extends to the hard temperature cap
    (not any per-instance limit) so the population depends only on
    (vendor, geometry, seed, chip_id, max_trefi_s).
    """
    headroom = math.exp(
        vendor.retention_temp_coeff
        * (MAX_SUPPORTED_TEMPERATURE_C - REFERENCE_TEMPERATURE_C)
    )
    return max_trefi_s * headroom


def sample_weak_cells(
    vendor: VendorModel,
    geometry: ChipGeometry,
    seed: int,
    chip_id: int,
    max_trefi_s: float,
) -> WeakCellSample:
    """Draw the weak-cell population chip construction would draw.

    Byte-identical to the sample :class:`SimulatedDRAMChip` builds in its
    constructor under the same arguments: same jittered vendor, same derived
    ``(seed, "retention", chip_id)`` stream, same horizon.  Passing the
    result back through the constructor's ``sample`` parameter skips the
    (re)draw without changing any downstream value.
    """
    vendor = effective_vendor(vendor, seed, chip_id)
    sampler = RetentionSampler(vendor, rng_mod.derive(seed, "retention", chip_id))
    return sampler.sample(geometry.capacity_bits, weak_cell_horizon_s(vendor, max_trefi_s))


@dataclasses.dataclass(frozen=True)
class PendingRead:
    """One read-compare's evaluation point, captured before sampling.

    :meth:`SimulatedDRAMChip.begin_read` performs everything a read does
    *except* the failure evaluation -- the IO clock advance, VRT sync,
    exposure bookkeeping, trace append, and the sense-amplifier restore --
    and returns this record.  A caller then evaluates failures itself
    (``population.sample_failures`` with the chip's own read RNG, or a
    fused fleet pass over many chips) against exactly the state a plain
    :meth:`~SimulatedDRAMChip.read_errors` would have used.

    ``alignment``/``stressed`` are the DPD arrays of the written pattern
    (the very objects the chip holds, so fast-path caches pin correctly);
    ``read_at_s`` is the clock time of the read, the instant VRT episodes
    are queried at.
    """

    exposure_s: float
    temperature_c: float
    alignment: np.ndarray
    stressed: Optional[np.ndarray]
    pattern_key: str
    stochastic: bool
    read_at_s: float


class SimulatedDRAMChip:
    """One simulated DRAM chip with retention, VRT, and DPD behaviour.

    Parameters
    ----------
    vendor:
        Statistical behaviour model (defaults to the paper's representative
        vendor B).
    geometry:
        Physical organization; defaults to a 1 Gbit chip.
    seed / chip_id:
        Together determine every random draw the chip will ever make, so two
        chips with the same (seed, chip_id) are statistically identical runs.
    clock:
        Shared simulated clock; a private one is created if omitted.
    max_trefi_s:
        Largest retention exposure the chip will be asked to sustain.  The
        weak tail and the VRT process are instantiated out to this horizon
        (adjusted for ``max_temperature_c``); longer exposures raise
        :class:`~repro.errors.ConfigurationError` instead of silently
        under-reporting failures.
    max_temperature_c:
        Highest ambient temperature the chip will be operated at.
    temperature_c:
        Initial ambient temperature.
    fast_path:
        Enable the memoized marginal-band failure evaluation in
        :class:`~repro.dram.cell.WeakCellPopulation` (byte-identical to the
        reference path); ``None`` resolves the process-wide default.
    sample:
        A prebuilt weak-cell population, exactly what
        :func:`sample_weak_cells` returns for the same (vendor, geometry,
        seed, chip_id, max_trefi_s) -- e.g. zero-copy views into a
        :class:`~repro.dram.shm.SharedPopulationStore` segment.  Skips the
        constructor's retention draw (that derived stream is consumed by
        nothing else, so every other chip stream is unchanged).
    """

    def __init__(
        self,
        vendor: VendorModel = VENDOR_B,
        geometry: ChipGeometry = DEFAULT_GEOMETRY,
        seed: int = rng_mod.DEFAULT_SEED,
        chip_id: int = 0,
        clock: Optional[SimClock] = None,
        max_trefi_s: float = 2.6,
        max_temperature_c: float = MAX_SUPPORTED_TEMPERATURE_C,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
        fast_path: Optional[bool] = None,
        sample: Optional[WeakCellSample] = None,
    ) -> None:
        if max_trefi_s <= 0.0:
            raise ConfigurationError(f"max_trefi_s must be positive, got {max_trefi_s!r}")
        if max_temperature_c > MAX_SUPPORTED_TEMPERATURE_C:
            raise ConfigurationError(
                f"max_temperature_c {max_temperature_c!r} exceeds the supported "
                f"maximum of {MAX_SUPPORTED_TEMPERATURE_C} degC"
            )
        if temperature_c > max_temperature_c:
            raise ConfigurationError(
                f"initial temperature {temperature_c!r} exceeds max_temperature_c"
            )
        vendor = effective_vendor(vendor, seed, chip_id)
        self.vendor = vendor
        self.geometry = geometry
        self.chip_id = int(chip_id)
        self.seed = int(seed)
        self.clock = clock if clock is not None else SimClock()
        self.trace = CommandTrace()
        self._max_trefi_s = float(max_trefi_s)
        self._max_temperature_c = float(max_temperature_c)
        self._temperature_c = float(temperature_c)
        self._initial_temperature_c = float(temperature_c)
        self._external_clock = clock is not None
        self._fast_path = fast_path

        self._weak_horizon_s = weak_cell_horizon_s(vendor, max_trefi_s)

        if sample is None:
            sampler = RetentionSampler(vendor, rng_mod.derive(seed, "retention", chip_id))
            sample = sampler.sample(geometry.capacity_bits, self._weak_horizon_s)
        dpd = DPDModel(
            susceptibility=sample.susceptibility,
            rng=rng_mod.derive(seed, "dpd", chip_id),
            random_alignment_cap=vendor.random_alignment_cap,
            rows=sample.indices // geometry.bits_per_row,
            cols=sample.indices % geometry.bits_per_row,
            orientation=sample.orientation,
            bits_per_row=geometry.bits_per_row,
        )
        self.population = WeakCellPopulation(sample, vendor, dpd, fast_path=fast_path)
        self.vrt = VRTProcess(
            vendor=vendor,
            capacity_bits=geometry.capacity_bits,
            horizon_s=max_trefi_s,
            rng=rng_mod.derive(seed, "vrt", chip_id),
            start_time_s=self.clock.now,
        )
        self._read_rng = rng_mod.derive(seed, "read", chip_id)

        self._pattern: Optional[DataPattern] = None
        self._alignment: Optional[np.ndarray] = None
        self._stressed: Optional[np.ndarray] = None
        self._refresh_enabled = True
        self._disable_time: Optional[float] = None
        self._frozen_exposure = 0.0
        self._io_seconds = pattern_io_seconds(geometry.capacity_bits)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity_bits(self) -> int:
        return self.geometry.capacity_bits

    @property
    def max_trefi_s(self) -> float:
        return self._max_trefi_s

    @property
    def temperature_c(self) -> float:
        return self._temperature_c

    @property
    def refresh_enabled(self) -> bool:
        return self._refresh_enabled

    @property
    def weak_cell_count(self) -> int:
        return len(self.population)

    @property
    def pattern_io_seconds(self) -> float:
        """Simulated time of one full-array pattern write or read pass."""
        return self._io_seconds

    def expected_ber(self, conditions: Conditions) -> float:
        """Analytic worst-case-pattern bit error rate at ``conditions``."""
        return self.vendor.ber(conditions)

    # ------------------------------------------------------------------
    # Command interface
    # ------------------------------------------------------------------
    def set_temperature(self, temperature_c: float) -> None:
        """Change the ambient temperature the chip operates at.

        Refused while refresh is disabled: a mid-exposure change would make
        the whole exposure evaluate at the final temperature (reads apply a
        single :meth:`~repro.dram.vendor.VendorModel.retention_scale`), which
        silently misattributes the accumulated leakage.  The paper's
        methodology changes ambient temperature only between tests; enable
        refresh (ending the exposure) before changing it.
        """
        if temperature_c > self._max_temperature_c:
            raise ConfigurationError(
                f"temperature {temperature_c!r} exceeds the chip's configured maximum "
                f"{self._max_temperature_c!r}; reconstruct with a larger max_temperature_c"
            )
        if not self._refresh_enabled:
            raise CommandSequenceError(
                "cannot change temperature while refresh is disabled: the "
                "in-progress retention exposure would be evaluated entirely at "
                "the new temperature; enable refresh first"
            )
        self._sync_vrt()
        self._temperature_c = float(temperature_c)
        self.trace.append(self.clock.now, Command.SET_TEMPERATURE, f"{temperature_c:.2f}degC")

    def write_pattern(self, pattern: DataPattern) -> None:
        """Fill the whole array with ``pattern`` (one full-array write pass).

        Writing restores every cell, so any in-progress retention exposure
        restarts from the end of the write.
        """
        self.clock.advance(self._io_seconds)
        self._sync_vrt()
        self._pattern = pattern
        self._alignment, self._stressed = self.population.dpd.excite(pattern)
        if not self._refresh_enabled:
            self._disable_time = self.clock.now
        self._frozen_exposure = 0.0
        self.trace.append(self.clock.now, Command.WRITE_PATTERN, pattern.key)

    def disable_refresh(self) -> None:
        if not self._refresh_enabled:
            raise CommandSequenceError("refresh is already disabled")
        self._refresh_enabled = False
        self._disable_time = self.clock.now
        self.trace.append(self.clock.now, Command.REFRESH_DISABLE)

    def enable_refresh(self) -> None:
        if self._refresh_enabled:
            raise CommandSequenceError("refresh is already enabled")
        assert self._disable_time is not None
        self._frozen_exposure = self.clock.now - self._disable_time
        self._refresh_enabled = True
        self._disable_time = None
        self.trace.append(self.clock.now, Command.REFRESH_ENABLE)

    def wait(self, seconds: float) -> None:
        """Let simulated time pass (the retention exposure of Algorithm 1)."""
        self.clock.advance(seconds)
        self._sync_vrt()
        self.trace.append(self.clock.now, Command.WAIT, f"{seconds:.6f}s")

    def sync(self) -> None:
        """Catch internal processes up to the shared clock.

        Needed when an external component (e.g. a multi-chip module or a
        thermal chamber) advances the shared clock directly.
        """
        self._sync_vrt()

    def error_index_space(self) -> np.ndarray:
        """Sorted flat indices every :meth:`read_errors` cell can come from.

        VRT episodes can strike anywhere in the array, so this is *not* a
        guarantee -- it is the weak tail that covers the overwhelming
        majority of observations, letting profilers accumulate observed
        cells in a dense boolean mask with a sparse overflow for the rest
        (see :class:`repro.core.device.ObservedCellAccumulator`).
        """
        return self.population.indices

    def reset(self) -> "SimulatedDRAMChip":
        """Return the chip to its just-constructed state, in place.

        Re-derives every RNG stream from (seed, chip_id), recreates the VRT
        process, clears DPD and fast-path caches, starts a fresh private
        clock and command trace, restores the initial temperature, and
        re-enables refresh.  A reset chip replays *exactly* the command
        responses of a newly constructed one -- which is what lets
        :class:`~repro.core.tradeoff.TradeoffExplorer` reuse one chip across
        grid points instead of paying weak-tail sampling per point.  Refused
        for chips on a shared external clock (a reset would rewind time for
        every other chip on it).
        """
        if self._external_clock:
            raise CommandSequenceError(
                "cannot reset a chip driven by a shared external clock; "
                "reconstruct the module instead"
            )
        self.clock = SimClock()
        self.trace = CommandTrace()
        self.population.dpd.reset(rng_mod.derive(self.seed, "dpd", self.chip_id))
        self.population.invalidate_fast_cache()
        self.vrt = VRTProcess(
            vendor=self.vendor,
            capacity_bits=self.geometry.capacity_bits,
            horizon_s=self._max_trefi_s,
            rng=rng_mod.derive(self.seed, "vrt", self.chip_id),
            start_time_s=self.clock.now,
        )
        self._read_rng = rng_mod.derive(self.seed, "read", self.chip_id)
        self._temperature_c = self._initial_temperature_c
        self._pattern = None
        self._alignment = None
        self._stressed = None
        self._refresh_enabled = True
        self._disable_time = None
        self._frozen_exposure = 0.0
        return self

    def current_exposure(self) -> float:
        """Retention exposure the next read-out would test against."""
        if not self._refresh_enabled and self._disable_time is not None:
            return self.clock.now - self._disable_time
        return self._frozen_exposure

    @property
    def read_rng(self) -> np.random.Generator:
        """The chip's read-out RNG stream (``derive(seed, "read", chip_id)``).

        External evaluators (the fleet engine) draw each chip's uniforms
        from this generator so batched sampling consumes the stream exactly
        as :meth:`read_errors` would.
        """
        return self._read_rng

    def begin_read(self) -> PendingRead:
        """Perform one read-compare's command work, deferring the evaluation.

        Advances the clock through the IO pass, syncs VRT, checks the
        exposure bound, records the command, and restores the cells (the
        exposure restarts) -- everything :meth:`read_errors` does around
        the failure evaluation itself.  The returned :class:`PendingRead`
        carries the exact evaluation point; sampling from it with the
        chip's :attr:`read_rng` reproduces :meth:`read_errors` bit for bit.
        """
        if self._pattern is None or self._alignment is None:
            raise CommandSequenceError("no data pattern has been written")
        self.clock.advance(self._io_seconds)
        self._sync_vrt()
        exposure = self.current_exposure()
        # Tolerate float accumulation error at the exact boundary.
        if exposure > self._max_trefi_s * (1.0 + 1e-9):
            raise ConfigurationError(
                f"exposure {exposure:.3f}s exceeds max_trefi_s={self._max_trefi_s!r}; "
                "construct the chip with a larger max_trefi_s"
            )
        self.trace.append(self.clock.now, Command.READ_COMPARE, f"exposure={exposure:.6f}s")
        pending = PendingRead(
            exposure_s=exposure,
            temperature_c=self._temperature_c,
            alignment=self._alignment,
            stressed=self._stressed,
            pattern_key=self._pattern.key,
            stochastic=self._pattern.stochastic,
            read_at_s=self.clock.now,
        )
        # Reading through the sense amplifiers restores the cells.
        if not self._refresh_enabled:
            self._disable_time = self.clock.now
        self._frozen_exposure = 0.0
        return pending

    def read_errors(self) -> np.ndarray:
        """Read the array back and compare against the written pattern.

        Returns the sorted flat indices of cells that lost their data during
        the current retention exposure.  Reading restores cell contents, so
        the exposure restarts afterwards.
        """
        pending = self.begin_read()
        static = self.population.sample_failures(
            pending.exposure_s,
            pending.temperature_c,
            pending.alignment,
            self._read_rng,
            stressed=pending.stressed,
            pattern_key=pending.pattern_key,
            stochastic=pending.stochastic,
        )
        vrt = self.vrt.failing_cells(pending.read_at_s, pending.exposure_s)
        if len(vrt) == 0:
            # ``static`` is already sorted and unique (a boolean mask over
            # the sorted weak-cell indices), so the union is the identity.
            return static
        return np.union1d(static, vrt)

    # ------------------------------------------------------------------
    # Ground truth (simulator-only)
    # ------------------------------------------------------------------
    def oracle_failing_set(
        self,
        conditions: Conditions,
        p_min: float = 0.05,
        window: Optional[Tuple[float, float]] = None,
    ) -> np.ndarray:
        """All cells that can fail at ``conditions`` -- the profiling target.

        ``window`` bounds the VRT episodes considered (defaults to everything
        from time zero to now); static weak cells are included when their
        worst-case failure probability is at least ``p_min``.
        """
        if conditions.trefi > self._max_trefi_s:
            raise ConfigurationError(
                f"oracle interval {conditions.trefi!r}s exceeds max_trefi_s"
            )
        static = self.population.oracle_failing(conditions, p_min=p_min)
        if window is None:
            window = (0.0, self.clock.now)
        vrt = self.vrt.episodes_overlapping(window[0], window[1], conditions.trefi)
        return np.union1d(static, vrt)

    def _sync_vrt(self) -> None:
        self.vrt.advance_to(self.clock.now, self._temperature_c)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"SimulatedDRAMChip(vendor={self.vendor.name}, "
            f"capacity={self.geometry.capacity_gigabits:g}Gb, chip_id={self.chip_id})"
        )
