"""Zero-copy shared-memory weak-cell populations for fleet campaigns.

Fleet work units used to pickle nothing but chip *coordinates* -- and then
pay the full weak-tail redraw (`RetentionSampler.sample`) inside every
worker, once per chip per unit.  This module moves the population itself
into one ``multiprocessing.shared_memory`` segment built once per run:

``build_population_samples``
    Draws every chip's :class:`~repro.dram.retention.WeakCellSample`
    (bit-identical to what chip construction would draw -- it calls
    :func:`repro.dram.chip.sample_weak_cells`), optionally fanning the
    per-chip draws out across a process pool.  Sampling is per-chip RNG
    work either way; the pool only buys wall-clock.

``SharedPopulationStore``
    Packs those samples into a single struct-of-arrays segment -- all
    ``indices``, then all ``mu_wc_s``, ``sigma_s``, ``susceptibility``,
    ``vrt_flag``, ``orientation`` -- with chips laid out in ascending
    ``chip_id`` order.  Workers :meth:`~SharedPopulationStore.attach` by
    segment name from a tiny JSON descriptor in the unit payload and get
    read-only numpy *views*: no copy on transport, no redraw on arrival,
    and consecutive chips form contiguous slices a
    :class:`~repro.dram.fleet.FleetPopulation` can use directly as its
    concatenated backing arrays.

Lifecycle (the part that has to survive violence)
-------------------------------------------------
The store deliberately *disowns* Python's ``resource_tracker``: on this
interpreter both create **and** attach register the segment with the
calling process's tracker, which (a) double-books the name across the pool
and (b) prints "leaked shared_memory" warnings -- and unlinks segments out
from under a resumable run -- whenever any participant dies.  Instead the
campaign owns cleanup explicitly:

* normal completion / cooperative cancel / exceptions: the campaign's
  ``finally`` block unlinks the segment;
* kill -9: a ``shm.json`` sidecar in the run directory records the segment
  name, and :func:`cleanup_stale_segment` unlinks it the next time the run
  directory is opened (resume) -- so a SIGKILLed campaign leaves at most
  one segment, reclaimed on resume, with zero tracker warnings;
* multi-tenant service: segment names are unique per run
  (:func:`new_segment_name`), so concurrent jobs sharing one process pool
  can never collide on -- or unlink -- each other's populations.
"""

from __future__ import annotations

import json
import os
import secrets
from concurrent.futures import Executor, ProcessPoolExecutor
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import threading

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from .chip import sample_weak_cells
from .geometry import ChipGeometry
from .retention import WeakCellSample
from .vendor import vendor_by_name

#: Struct-of-arrays field layout, in segment order.  dtypes are exactly the
#: dtypes :class:`~repro.dram.retention.RetentionSampler` produces, so views
#: are drop-in replacements for freshly drawn arrays.
_FIELDS: Tuple[Tuple[str, np.dtype], ...] = (
    ("indices", np.dtype(np.int64)),
    ("mu_wc_s", np.dtype(np.float64)),
    ("sigma_s", np.dtype(np.float64)),
    ("susceptibility", np.dtype(np.float64)),
    ("vrt_flag", np.dtype(np.bool_)),
    ("orientation", np.dtype(np.uint8)),
)

#: Run-directory sidecar recording the live segment, for crash reclamation.
SIDECAR_NAME = "shm.json"

#: Mappings whose close() hit live numpy views.  Holding the SharedMemory
#: objects here keeps their ``__del__`` (which would retry the close and
#: raise an unraisable BufferError) from ever running; the mappings last
#: until process exit, exactly the documented best-effort cost model.
_PINNED_MAPPINGS: List[shared_memory.SharedMemory] = []

#: Segments this process currently has mapped (name -> buffer bytes).
#: Purely observational accounting behind :func:`active_segment_stats`:
#: the service's health endpoint and live metrics plane report it, and
#: since campaign segments are created in the manager process (the job
#: executor thread), the manager's own table covers every tenant.
_ACTIVE_SEGMENTS: Dict[str, int] = {}
_ACTIVE_LOCK = threading.Lock()


def _note_mapped(name: str, nbytes: int) -> None:
    with _ACTIVE_LOCK:
        _ACTIVE_SEGMENTS[name] = int(nbytes)


def _note_unmapped(name: str) -> None:
    with _ACTIVE_LOCK:
        _ACTIVE_SEGMENTS.pop(name, None)


#: Cumulative attach count per segment name in this process (never
#: decremented on detach).  Tile-sharded dispatch attaches a segment once
#: per (chunk x tile) unit instead of once per chunk, so this table is
#: what makes the attach amplification observable -- tests and capacity
#: reviews read it through :func:`segment_attach_stats` -- without adding
#: anything to the attach hot path beyond a dict increment.
_ATTACH_COUNTS: Dict[str, int] = {}


def _note_attach(name: str) -> None:
    with _ACTIVE_LOCK:
        _ATTACH_COUNTS[name] = _ATTACH_COUNTS.get(name, 0) + 1


def active_segment_stats() -> Tuple[int, int]:
    """(count, total bytes) of segments currently mapped by this process."""
    with _ACTIVE_LOCK:
        return len(_ACTIVE_SEGMENTS), sum(_ACTIVE_SEGMENTS.values())


def segment_attach_stats() -> Dict[str, int]:
    """Cumulative per-segment attach counts for this process.

    Counts every :meth:`SharedPopulationStore.attach` since process
    start, including segments since detached or unlinked -- the
    amplification signal for tile-sharded dispatch, where each segment
    is attached ``tiles_per_chunk`` times more often than under chunk
    dispatch (in the *worker* processes; the parent's table stays flat).
    """
    with _ACTIVE_LOCK:
        return dict(_ATTACH_COUNTS)


def new_segment_name() -> str:
    """A collision-free segment name, unique per (process, call).

    Uniqueness is what isolates tenants sharing one service pool: two
    concurrent campaigns can never attach -- or unlink -- each other's
    populations by name.
    """
    return f"repro-fleet-{os.getpid()}-{secrets.token_hex(6)}"


def _disown(shm: shared_memory.SharedMemory) -> None:
    """Remove ``shm`` from this process's resource tracker.

    Both create and attach register the name here; left registered, any
    participant's exit triggers "leaked shared_memory" warnings and -- far
    worse -- a tracker-side unlink that yanks the population out from under
    every other process still using it.  The campaign owns the unlink.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker API drift
        pass


class SharedPopulationStore:
    """One campaign's weak-cell populations in a single shared segment.

    Chips are packed in ascending ``chip_id`` order, each field laid out
    contiguously across chips (struct-of-arrays), so a fleet chunk of
    consecutive chips sees its concatenated per-field data as one
    contiguous slice -- the zero-copy backing for
    :class:`~repro.dram.fleet.FleetPopulation`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        chips: "Dict[int, Tuple[int, int]]",
        owner: bool,
        total: Optional[int] = None,
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._chips = dict(chips)
        self._owner = owner
        # ``total`` is the segment-wide cell count the field layout is
        # built from.  It must come from the descriptor when attaching:
        # a chunk descriptor lists only its own chips, but the field
        # offsets depend on every chip in the segment.
        if total is None:
            total = sum(length for _start, length in chips.values())
        self._total = int(total)
        self._fields: Dict[str, np.ndarray] = {}
        offset = 0
        buf = shm.buf
        for name, dtype in _FIELDS:
            arr = np.frombuffer(buf, dtype=dtype, count=self._total, offset=offset)
            arr.flags.writeable = False
            self._fields[name] = arr
            offset += self._total * dtype.itemsize

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        samples: Mapping[int, WeakCellSample],
        name: Optional[str] = None,
    ) -> "SharedPopulationStore":
        """Pack per-chip samples into a fresh segment (creator side)."""
        if not samples:
            raise ConfigurationError("a shared population store needs at least one chip")
        ordered = sorted(samples.items())
        chips: Dict[int, Tuple[int, int]] = {}
        start = 0
        for chip_id, sample in ordered:
            chips[int(chip_id)] = (start, len(sample))
            start += len(sample)
        total = start
        itemsize = sum(dtype.itemsize for _name, dtype in _FIELDS)
        nbytes = max(1, total * itemsize)
        with obs.span("shm.pack", chips=len(chips), cells=total, bytes=nbytes):
            shm = shared_memory.SharedMemory(
                create=True,
                size=nbytes,
                name=name if name is not None else new_segment_name(),
            )
            _disown(shm)
            offset = 0
            for field, dtype in _FIELDS:
                arr = np.frombuffer(shm.buf, dtype=dtype, count=total, offset=offset)
                for (chip_id, sample), (chip_start, length) in zip(
                    ordered, chips.values()
                ):
                    arr[chip_start : chip_start + length] = getattr(sample, field)
                offset += total * dtype.itemsize
        _note_mapped(shm.name, shm.buf.nbytes)
        return cls(shm, chips, owner=True)

    @classmethod
    def attach(cls, descriptor: Mapping[str, Any]) -> "SharedPopulationStore":
        """Attach to an existing segment from its JSON descriptor."""
        with obs.span(
            "shm.attach",
            segment=str(descriptor.get("segment")),
            chips=len(descriptor.get("chips", ())),
        ):
            shm = shared_memory.SharedMemory(
                name=str(descriptor["segment"]), create=False
            )
            _disown(shm)
        _note_mapped(shm.name, shm.buf.nbytes)
        _note_attach(shm.name)
        if obs.enabled():
            obs.counter("shm.attaches")
        chips = {
            int(chip_id): (int(start), int(length))
            for chip_id, (start, length) in descriptor["chips"].items()
        }
        return cls(shm, chips, owner=False, total=int(descriptor["total"]))

    def descriptor(
        self, chip_ids: Optional[Sequence[int]] = None
    ) -> Dict[str, Any]:
        """JSON handle a worker attaches from: segment name + chip layout.

        ``chip_ids`` restricts the layout to a chunk's members, keeping unit
        payloads proportional to the chunk, not the campaign.
        """
        assert self._shm is not None
        if chip_ids is None:
            chips: Mapping[int, Tuple[int, int]] = self._chips
        else:
            chips = {int(c): self._bounds(int(c)) for c in chip_ids}
        return {
            "segment": self._shm.name,
            "total": self._total,
            "chips": {str(chip_id): [start, length] for chip_id, (start, length) in chips.items()},
        }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _bounds(self, chip_id: int) -> Tuple[int, int]:
        try:
            return self._chips[chip_id]
        except KeyError:
            raise ConfigurationError(
                f"chip {chip_id!r} is not in the shared population store"
            ) from None

    def __contains__(self, chip_id: int) -> bool:
        return int(chip_id) in self._chips

    def __len__(self) -> int:
        return len(self._chips)

    @property
    def segment_name(self) -> str:
        assert self._shm is not None
        return self._shm.name

    def sample(self, chip_id: int) -> WeakCellSample:
        """Read-only zero-copy views of one chip's weak-cell arrays."""
        start, length = self._bounds(int(chip_id))
        end = start + length
        return WeakCellSample(
            **{name: self._fields[name][start:end] for name, _dtype in _FIELDS}
        )

    def fleet_backing(
        self, chip_ids: Sequence[int]
    ) -> Optional[Dict[str, np.ndarray]]:
        """Contiguous concatenated field slices for a fleet of chips.

        Returns ``{"mu_wc_s", "sigma_s", "susceptibility"}`` views covering
        exactly the chips in order -- the arrays
        :class:`~repro.dram.fleet.FleetPopulation` would otherwise build
        with ``np.concatenate`` -- or ``None`` when the chips are not
        adjacent in the segment (e.g. a resume's sparse remainder), in
        which case the caller falls back to concatenation.
        """
        if not chip_ids:
            return None
        start, length = self._bounds(int(chip_ids[0]))
        cursor = start + length
        for chip_id in chip_ids[1:]:
            chip_start, length = self._bounds(int(chip_id))
            if chip_start != cursor:
                return None
            cursor += length
        return {
            name: self._fields[name][start:cursor]
            for name in ("mu_wc_s", "sigma_s", "susceptibility")
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (views become invalid).

        Best-effort: if live numpy views still pin the buffer the unmap is
        skipped (the mapping then lasts until process exit, exactly the
        pre-shared-memory cost model) rather than crashing the worker.
        """
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        self._fields.clear()
        _note_unmapped(shm.name)
        try:
            shm.close()
        except BufferError:
            _PINNED_MAPPINGS.append(shm)

    def unlink(self) -> None:
        """Remove the segment from the system (creator side)."""
        shm = self._shm
        if shm is None:
            return
        name = shm.name
        self.close()
        unlink_segment(name)

    def __enter__(self) -> "SharedPopulationStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def unlink_segment(name: str) -> bool:
    """Unlink ``name`` if it exists; ``True`` when something was removed.

    No ``_disown`` here: attaching registers the name with the tracker and
    ``SharedMemory.unlink`` unregisters it again -- already balanced.  A
    second unregister would hit the tracker daemon as a KeyError.
    """
    try:
        shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - no views exist here
            _PINNED_MAPPINGS.append(shm)
    return True


# ----------------------------------------------------------------------
# Population building (creator side)
# ----------------------------------------------------------------------

#: One chip's sampling coordinates -- everything sample_weak_cells needs,
#: as plain JSON so chunks can cross the pool boundary.
SampleSpec = Dict[str, Any]


def chip_sample_spec(payload: Mapping[str, Any], max_trefi_s: float) -> SampleSpec:
    """Extract a sampling spec from a per-chip unit payload."""
    return {
        "chip_id": int(payload["chip_id"]),
        "vendor": str(payload["vendor"]),
        "seed": int(payload["seed"]),
        "geometry": {k: int(v) for k, v in payload["geometry"].items()},
        "max_trefi_s": float(max_trefi_s),
    }


def _sample_from_spec(spec: SampleSpec) -> WeakCellSample:
    return sample_weak_cells(
        vendor=vendor_by_name(str(spec["vendor"])),
        geometry=ChipGeometry(**{k: int(v) for k, v in spec["geometry"].items()}),
        seed=int(spec["seed"]),
        chip_id=int(spec["chip_id"]),
        max_trefi_s=float(spec["max_trefi_s"]),
    )


def _sample_spec_chunk(specs: List[SampleSpec]) -> List[Tuple[int, WeakCellSample]]:
    """Pool worker: draw one chunk of chip populations."""
    return [(int(spec["chip_id"]), _sample_from_spec(spec)) for spec in specs]


def build_population_samples(
    specs: Sequence[SampleSpec],
    executor: Optional[Executor] = None,
    workers: Optional[int] = None,
) -> Dict[int, WeakCellSample]:
    """Draw every chip's weak-cell sample, in parallel when it pays.

    With an ``executor`` (e.g. the service's shared pool) or ``workers > 1``,
    chips are sampled in chunks across processes and the arrays shipped back
    in one pickle per chunk -- the only time this population ever crosses a
    process boundary.  Serial otherwise.  Values are bit-identical in every
    mode (each chip's draw is a pure function of its spec).
    """
    specs = list(specs)
    if not specs:
        return {}
    parallel = executor is not None or (workers is not None and workers > 1)
    if not parallel or len(specs) < 8:
        with obs.span("shm.build_samples", chips=len(specs), mode="serial"):
            return {int(s["chip_id"]): _sample_from_spec(s) for s in specs}
    pool_size = workers if workers is not None and workers > 1 else (os.cpu_count() or 1)
    # ~4 chunks per worker amortizes submission overhead while keeping the
    # tail of the last chunks short.
    chunk = max(1, len(specs) // (4 * pool_size) + 1)
    chunks = [specs[i : i + chunk] for i in range(0, len(specs), chunk)]
    samples: Dict[int, WeakCellSample] = {}
    with obs.span("shm.build_samples", chips=len(specs), mode="pooled"):
        if executor is not None:
            results = executor.map(_sample_spec_chunk, chunks)
            for batch in results:
                samples.update(batch)
        else:
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                for batch in pool.map(_sample_spec_chunk, chunks):
                    samples.update(batch)
    return samples


# ----------------------------------------------------------------------
# Run-directory sidecar: crash-safe segment reclamation
# ----------------------------------------------------------------------

def write_sidecar(run_dir: Union[str, Path], segment_name: str) -> None:
    """Record the live segment in the run directory (before work starts)."""
    path = Path(run_dir)
    path.mkdir(parents=True, exist_ok=True)
    tmp = path / (SIDECAR_NAME + ".tmp")
    tmp.write_text(json.dumps({"segment": segment_name}))
    os.replace(tmp, path / SIDECAR_NAME)


def remove_sidecar(run_dir: Union[str, Path]) -> None:
    try:
        (Path(run_dir) / SIDECAR_NAME).unlink()
    except FileNotFoundError:
        pass


def cleanup_stale_segment(run_dir: Union[str, Path]) -> Optional[str]:
    """Reclaim the segment a SIGKILLed run left behind, if any.

    Called whenever a run directory is (re)opened: reads the sidecar, unlinks
    the named segment if it still exists, and removes the sidecar.  Returns
    the reclaimed segment name, or ``None`` when there was nothing to do.
    """
    path = Path(run_dir) / SIDECAR_NAME
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return None
    name = data.get("segment")
    reclaimed = unlink_segment(str(name)) if name else False
    remove_sidecar(run_dir)
    return str(name) if reclaimed else None
