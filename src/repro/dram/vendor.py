"""Per-vendor DRAM retention behaviour models.

The paper characterizes 368 LPDDR4 chips from three anonymized vendors
(A, B, C) and reports the statistical structure of their retention
behaviour.  :class:`VendorModel` captures that structure; the three built-in
instances are calibrated directly against the paper's published anchors:

* **Eq 1** -- failure-rate temperature dependence
  ``R_A ~ e^{0.22 dT}``, ``R_B ~ e^{0.20 dT}``, ``R_C ~ e^{0.26 dT}``
  (roughly 10x failures per +10 degC).
* **Section 6.2.3** -- 2464 retention failures at 1024 ms / 45 degC on a
  2 GB (16 Gbit) device, i.e. a raw bit error rate of ~1.4e-7, and a VRT
  new-failure accumulation rate of A = 0.73 cells/hour at that point.
* **Figure 3** -- steady-state accumulation of ~1 cell / 20 s (180 cells/h)
  at 2048 ms / 45 degC; Figure 4 -- the accumulation rate follows a
  power law ``A(t) = a * t^b`` in the refresh interval.
* **Figure 6(b)** -- the per-cell failure-CDF standard deviations follow a
  lognormal distribution with the majority below 200 ms.
* **Section 6.1.2** -- a +250 ms reach keeps the false positive rate below
  50%, pinning the local slope of the BER curve near 1 s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..conditions import REFERENCE_TEMPERATURE_C, Conditions
from ..errors import ConfigurationError

_SQRT2 = math.sqrt(2.0)

#: Anchor refresh interval (seconds) used to tie the failure-rate temperature
#: coefficient of Eq 1 to a retention-time scale factor.
_ANCHOR_TREFI_S = 1.024


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * math.erfc(-z / _SQRT2)


@dataclass(frozen=True)
class VendorModel:
    """Statistical retention model of one vendor's chips.

    All parameters are expressed at the reference ambient temperature of
    45 degC; temperature scaling is derived from
    :attr:`failure_rate_temp_coeff`.

    Parameters
    ----------
    name:
        Vendor label ("A", "B" or "C").
    failure_rate_temp_coeff:
        ``k`` in ``R ~ e^{k dT}`` (Eq 1 of the paper).
    retention_ln_median / retention_ln_sigma:
        Lognormal parameters (natural log, seconds) of the *worst-case-
        pattern* retention-time distribution.  Only the weak tail below a few
        seconds is ever exercised.
    cell_sigma_ln_median_s / cell_sigma_ln_sigma:
        Lognormal parameters of the per-cell failure-CDF standard deviation
        (Figure 6b): median sigma in seconds and the ln-space spread.
    vrt_arrival_scale_per_gbit_hour / vrt_arrival_exponent:
        ``a`` and ``b`` of the VRT new-failure arrival intensity
        ``A(t) = a * capacity_Gbit * t^b`` in cells/hour with ``t`` the
        refresh interval in seconds (Figure 4).
    vrt_dwell_mean_s:
        Mean dwell time of a low-retention VRT episode.  Finite dwell times
        are what keep the per-iteration failing set approximately constant
        in size while the cumulative set keeps growing (Figure 3).
    vrt_cell_fraction:
        Fraction of statically weak cells flagged as VRT-prone (~2% per the
        paper's footnote 1); these are excluded from per-cell CDF analyses.
    dpd_susceptibility_max:
        Upper bound of the uniform per-cell DPD susceptibility ``s``:
        a cell's retention under data pattern alignment ``a`` is
        ``mu_wc * (1 - s*a) / (1 - s)`` where ``mu_wc`` is its worst-case
        retention time.
    random_alignment_cap:
        Upper cap on the alignments the random pattern can draw; < 1 so that
        random data alone never attains full coverage (Observation 3).
    """

    name: str
    failure_rate_temp_coeff: float
    retention_ln_median: float
    retention_ln_sigma: float
    cell_sigma_ln_median_s: float
    cell_sigma_ln_sigma: float
    vrt_arrival_scale_per_gbit_hour: float
    vrt_arrival_exponent: float
    vrt_dwell_mean_s: float = 10800.0
    vrt_cell_fraction: float = 0.02
    dpd_susceptibility_max: float = 0.30
    random_alignment_cap: float = 0.97
    #: Chip-to-chip process variation: std of the per-chip shift applied to
    #: ``retention_ln_median``.  Individual chips of one vendor differ in
    #: their tail mass (the spread visible across the paper's population
    #: plots); 0.10 in ln-space is ~±30% in failure counts.
    chip_to_chip_ln_sigma: float = 0.10

    def __post_init__(self) -> None:
        if self.chip_to_chip_ln_sigma < 0.0:
            raise ConfigurationError("chip_to_chip_ln_sigma must be non-negative")
        if self.retention_ln_sigma <= 0.0 or self.cell_sigma_ln_sigma <= 0.0:
            raise ConfigurationError("lognormal sigma parameters must be positive")
        if not (0.0 < self.random_alignment_cap < 1.0):
            raise ConfigurationError("random_alignment_cap must lie strictly in (0, 1)")
        if not (0.0 <= self.dpd_susceptibility_max < 1.0):
            raise ConfigurationError("dpd_susceptibility_max must lie in [0, 1)")
        if self.failure_rate_temp_coeff <= 0.0:
            raise ConfigurationError("failure_rate_temp_coeff must be positive")

    # ------------------------------------------------------------------
    # Temperature scaling
    # ------------------------------------------------------------------
    @property
    def retention_temp_coeff(self) -> float:
        """Per-degC scale coefficient of retention times.

        Raising the temperature by dT multiplies every retention time (and
        every per-cell sigma) by ``e^{-retention_temp_coeff * dT}``.  The
        value is derived so that the induced *failure-rate* scaling in the
        tail matches Eq 1's ``e^{failure_rate_temp_coeff * dT}`` near the
        anchor interval of ~1 s: for a lognormal tail the local hazard of
        the ln-space normal is |z|, so ``k_ret = k_rate * sigma_ln / |z|``.
        """
        z_anchor = (math.log(_ANCHOR_TREFI_S) - self.retention_ln_median) / self.retention_ln_sigma
        return self.failure_rate_temp_coeff * self.retention_ln_sigma / abs(z_anchor)

    def retention_scale(self, temperature_c: float) -> float:
        """Multiplier applied to retention times at the given ambient temperature."""
        return math.exp(-self.retention_temp_coeff * (temperature_c - REFERENCE_TEMPERATURE_C))

    def failure_rate_scale(self, delta_temperature_c: float) -> float:
        """Eq 1: relative failure-rate change for an ambient shift of dT."""
        return math.exp(self.failure_rate_temp_coeff * delta_temperature_c)

    # ------------------------------------------------------------------
    # Aggregate bit error rate
    # ------------------------------------------------------------------
    def ber(self, conditions: Conditions) -> float:
        """Analytic worst-case-pattern raw bit error rate at ``conditions``.

        This is the model underlying Figure 2's aggregate retention-failure
        curves: the probability that a cell's (temperature-scaled) worst-case
        retention time falls below the refresh interval.
        """
        scale = self.retention_scale(conditions.temperature)
        z = (math.log(conditions.trefi / scale) - self.retention_ln_median) / self.retention_ln_sigma
        return _phi(z)

    def expected_failures(self, conditions: Conditions, capacity_bits: int) -> float:
        """Expected number of worst-case-pattern failing cells in a chip."""
        return self.ber(conditions) * capacity_bits

    def weak_cell_probability(self, horizon_s: float, temperature_c: float) -> float:
        """Probability a cell's worst-case retention is below ``horizon_s``."""
        return self.ber(Conditions(trefi=horizon_s, temperature=temperature_c))

    # ------------------------------------------------------------------
    # VRT accumulation (Figure 4)
    # ------------------------------------------------------------------
    def vrt_arrival_rate_per_hour(
        self,
        trefi_s: float,
        capacity_gigabits: float,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
    ) -> float:
        """Steady-state new-failure accumulation rate ``A(t)`` in cells/hour.

        Follows the power law of Figure 4, scaled linearly with capacity and
        exponentially with temperature (Eq 1).
        """
        if trefi_s <= 0.0:
            raise ConfigurationError(f"refresh interval must be positive, got {trefi_s!r}")
        base = self.vrt_arrival_scale_per_gbit_hour * capacity_gigabits
        return base * trefi_s**self.vrt_arrival_exponent * self.failure_rate_scale(
            temperature_c - REFERENCE_TEMPERATURE_C
        )


# ----------------------------------------------------------------------
# Built-in vendors, calibrated against the paper's anchors (module docstring).
# Vendor B is the paper's "representative chip" vendor: its parameters
# reproduce BER(1024 ms, 45 degC) ~= 1.4e-7 (2464 cells / 2 GB),
# A(1024 ms) ~= 0.73 cells/h and A(2048 ms) ~= 180 cells/h on a 16 Gbit chip.
# ----------------------------------------------------------------------
VENDOR_A = VendorModel(
    name="A",
    failure_rate_temp_coeff=0.22,
    retention_ln_median=9.6,
    retention_ln_sigma=1.90,
    cell_sigma_ln_median_s=0.070,
    cell_sigma_ln_sigma=0.60,
    vrt_arrival_scale_per_gbit_hour=0.045,
    vrt_arrival_exponent=7.5,
)

VENDOR_B = VendorModel(
    name="B",
    failure_rate_temp_coeff=0.20,
    retention_ln_median=9.4,
    retention_ln_sigma=1.83,
    cell_sigma_ln_median_s=0.060,
    cell_sigma_ln_sigma=0.60,
    # Anchored so that A(1024 ms, 16 Gbit) = 0.73 cells/h (Section 6.2.3) and
    # A(2048 ms, 16 Gbit) = 180 cells/h = 1 cell / 20 s (Figure 3).
    vrt_arrival_scale_per_gbit_hour=0.0378,
    vrt_arrival_exponent=7.94,
)

VENDOR_C = VendorModel(
    name="C",
    failure_rate_temp_coeff=0.26,
    retention_ln_median=9.2,
    retention_ln_sigma=1.75,
    cell_sigma_ln_median_s=0.055,
    cell_sigma_ln_sigma=0.55,
    vrt_arrival_scale_per_gbit_hour=0.050,
    vrt_arrival_exponent=8.3,
)

VENDORS: Dict[str, VendorModel] = {v.name: v for v in (VENDOR_A, VENDOR_B, VENDOR_C)}


def vendor_by_name(name: str) -> VendorModel:
    """Look up a built-in vendor model by its label."""
    try:
        return VENDORS[name]
    except KeyError:
        raise ConfigurationError(f"unknown vendor {name!r}; known: {sorted(VENDORS)}") from None
