"""Profiling-level DRAM timing model.

The profiling runtime model (Eq 9 of the paper) needs the time to write a
data pattern into all of DRAM and the time to read it back and compare:

    T_profile = (T_REFI + T_wr + T_rd) * N_dp * N_it

The paper empirically measures T_rd = T_wr = 0.125 s for 2 GB (16 Gbit) of
LPDDR4 and scales that linearly with capacity (their footnote in
Section 7.3.1: 32x 8Gb chips take 2 s per pass; 32x 64Gb chips take 16 s).
This module encodes that measured IO model plus the JEDEC-level refresh
constants used by the system-performance substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .geometry import GIBIBIT

#: Measured full-array single-pass IO time per gigabit (read or write),
#: anchored at 0.125 s / 16 Gbit (Section 7.3.1).
IO_SECONDS_PER_GIGABIT = 0.125 / 16.0


def pattern_io_seconds(capacity_bits: int) -> float:
    """Time for one full-array pattern write *or* read-and-compare pass."""
    if capacity_bits <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity_bits!r}")
    return IO_SECONDS_PER_GIGABIT * (capacity_bits / GIBIBIT)


@dataclass(frozen=True)
class RefreshTimings:
    """Refresh-related JEDEC timing constants for one chip density.

    ``trfc_ns`` (refresh cycle time) grows with density; values follow the
    LPDDR4-class progression used in refresh-overhead studies.
    """

    density_gigabits: int
    trfc_ns: float
    rows_per_bank: int

    @property
    def refresh_commands_per_window(self) -> int:
        """All-bank refresh commands needed per tREFW window (8192 by JEDEC)."""
        return 8192


# tRFC grows with density because more rows must be restored per refresh
# command while charge-restoration time cannot shrink.  The 32 Gb and 64 Gb
# entries are projections for future high-density parts, calibrated so the
# end-to-end refresh overheads land in the range the paper's Figure 13
# reports (average no-refresh gain of ~19-20% for 64 Gb devices).
_REFRESH_TABLE = {
    8: RefreshTimings(density_gigabits=8, trfc_ns=350.0, rows_per_bank=65536),
    16: RefreshTimings(density_gigabits=16, trfc_ns=420.0, rows_per_bank=131072),
    32: RefreshTimings(density_gigabits=32, trfc_ns=500.0, rows_per_bank=262144),
    64: RefreshTimings(density_gigabits=64, trfc_ns=600.0, rows_per_bank=524288),
}


def refresh_timings(density_gigabits: int) -> RefreshTimings:
    """Refresh constants for a chip density (8/16/32/64 Gb, Figure 11-13 sweep)."""
    try:
        return _REFRESH_TABLE[density_gigabits]
    except KeyError:
        raise ConfigurationError(
            f"no refresh timings for {density_gigabits!r} Gb; known: {sorted(_REFRESH_TABLE)}"
        ) from None
