"""Data pattern dependence (DPD) model.

A cell's effective retention time depends on the data stored in it and in
its neighbours (Section 2.3.2).  We model this with two quantities:

* a per-cell *susceptibility* ``s`` in [0, dpd_susceptibility_max): how much
  the worst aggressor arrangement can degrade the cell relative to the most
  benign one; and
* a per-(cell, pattern) *alignment* ``a`` in [0, 1]: how closely a concrete
  test pattern approaches that cell's worst case.

The effective retention time under a pattern is::

    mu_eff = mu_wc * (1 - s*a) / (1 - s)

so alignment 1 recovers the worst-case retention ``mu_wc`` and alignment 0
yields the benign-case retention ``mu_wc / (1 - s)``.

Deterministic patterns get a fixed alignment per cell (drawn once from the
pattern family's Beta distribution and cached); the random pattern redraws
alignments on every write, capped below 1 -- which is exactly why random data
discovers the most failures over many iterations without ever guaranteeing
full coverage (Observation 3 / Figure 5).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError, ProfilingError
from ..patterns import DataPattern


class DPDModel:
    """Per-cell data-pattern-dependence state for one chip.

    When constructed with cell positions and orientations (the normal path
    from a chip), the model also computes per-pattern *stress masks*: a cell
    leaks towards failure only while storing its charged logic value, so a
    pattern that writes the discharged value into a cell cannot make it fail
    at all -- the physical reason every pattern is tested together with its
    inverse (Section 3.2).
    """

    def __init__(
        self,
        susceptibility: np.ndarray,
        rng: np.random.Generator,
        random_alignment_cap: float,
        rows: Optional[np.ndarray] = None,
        cols: Optional[np.ndarray] = None,
        orientation: Optional[np.ndarray] = None,
        bits_per_row: int = 16384,
    ) -> None:
        if not (0.0 < random_alignment_cap < 1.0):
            raise ConfigurationError("random_alignment_cap must lie strictly in (0, 1)")
        if np.any(susceptibility < 0.0) or np.any(susceptibility >= 1.0):
            raise ConfigurationError("susceptibilities must lie in [0, 1)")
        self._susceptibility = np.asarray(susceptibility, dtype=np.float64)
        self._n_cells = len(self._susceptibility)
        self._rng = rng
        self._random_cap = float(random_alignment_cap)
        self._cached: Dict[str, np.ndarray] = {}
        self._stress_cached: Dict[str, np.ndarray] = {}
        self._rows = None if rows is None else np.asarray(rows)
        self._cols = None if cols is None else np.asarray(cols)
        self._orientation = None if orientation is None else np.asarray(orientation)
        self._bits_per_row = bits_per_row
        if (self._rows is None) != (self._orientation is None) or (
            (self._cols is None) != (self._orientation is None)
        ):
            raise ConfigurationError(
                "rows, cols and orientation must be provided together or not at all"
            )

    @property
    def n_cells(self) -> int:
        return self._n_cells

    @property
    def susceptibility(self) -> np.ndarray:
        return self._susceptibility

    @property
    def models_orientation(self) -> bool:
        return self._orientation is not None

    def alignment(self, pattern: DataPattern, fresh: bool = False) -> np.ndarray:
        """Alignment vector of ``pattern`` across all cells.

        With ``fresh=True`` (a write) a new vector is drawn for stochastic
        patterns and the deterministic vector is drawn on first use; with
        ``fresh=False`` (a read-only query) the call returns the draw from
        the most recent write and is strictly side-effect-free.  Querying a
        pattern that has never been written raises
        :class:`~repro.errors.ProfilingError` -- the alternative (drawing
        from the chip RNG as a side effect of an inspection) would perturb
        every subsequent stochastic draw and break the determinism contract
        that identically-configured chips replay identical failures.
        """
        key = pattern.key
        if fresh:
            if pattern.stochastic:
                a, b = pattern.alignment_beta
                draw = self._draw_beta(a, b) * self._random_cap
                self._cached[key] = draw
                return draw
            draw = self._cached.get(key)
            if draw is None:
                a, b = pattern.alignment_beta
                draw = self._rng.beta(a, b, size=self.n_cells)
                self._cached[key] = draw
            return draw
        draw = self._cached.get(key)
        if draw is None:
            raise ProfilingError(
                f"no alignment for pattern {key!r}: it has never been "
                "written to this chip (query paths must not draw DPD state; "
                "write the pattern first or call excite())"
            )
        return draw

    def _draw_beta(self, a: float, b: float) -> np.ndarray:
        """One Beta(a, b) draw per cell.

        Stochastic patterns redraw this on *every* write, so it sits on the
        profiling hot path.  ``Beta(2, 2)`` -- the random pattern family --
        is the distribution of the median of three iid uniforms (the
        order-statistic identity ``Beta(k, n-k+1) = k``-th smallest of ``n``
        uniforms), and a branchless exact median of three uniform vectors
        costs a fraction of the generic rejection sampler.  Other shapes
        fall back to the generator's Beta sampler.
        """
        if a == 2.0 and b == 2.0:
            u = self._rng.random((3, self.n_cells))
            return np.maximum(
                np.minimum(u[0], u[1]),
                np.minimum(np.maximum(u[0], u[1]), u[2]),
            )
        return self._rng.beta(a, b, size=self.n_cells)

    def stress_mask(self, pattern: DataPattern, fresh: bool = False) -> np.ndarray:
        """Per-cell mask: 1 where ``pattern`` stores the cell's charged value.

        Without orientation information (standalone DPD models in tests)
        every cell counts as stressed.  For the random pattern the stored
        bits -- and hence the mask -- are redrawn on every write
        (``fresh=True``); querying a never-written stochastic pattern with
        ``fresh=False`` raises :class:`~repro.errors.ProfilingError` rather
        than drawing from the chip RNG as a query side effect.  Deterministic
        masks involve no RNG and are computed (and cached) on demand.
        """
        if self._orientation is None:
            return np.ones(self.n_cells)
        key = pattern.key
        if pattern.stochastic:
            if fresh:
                bits = pattern.bits_at(self._rows, self._cols, self._bits_per_row, self._rng)
                mask = (bits == self._orientation).astype(float)
                self._stress_cached[key] = mask
                return mask
            mask = self._stress_cached.get(key)
            if mask is None:
                raise ProfilingError(
                    f"no stress mask for stochastic pattern {key!r}: it has "
                    "never been written to this chip (query paths must not draw "
                    "DPD state; write the pattern first or call excite())"
                )
            return mask
        mask = self._stress_cached.get(key)
        if mask is None:
            bits = pattern.bits_at(self._rows, self._cols, self._bits_per_row)
            mask = (bits == self._orientation).astype(float)
            self._stress_cached[key] = mask
        return mask

    def reset(self, rng: np.random.Generator) -> None:
        """Return the model to its just-constructed state.

        Drops every cached alignment and stress mask and replaces the
        generator with ``rng`` (a freshly re-derived stream), so a reset
        chip replays exactly the draws a newly constructed one would make.
        """
        self._rng = rng
        self._cached.clear()
        self._stress_cached.clear()

    def excite(self, pattern: DataPattern) -> "tuple[np.ndarray, np.ndarray]":
        """One write's DPD state: (alignment, stress mask), fresh draws for
        stochastic patterns.

        The stochastic branch inlines :meth:`alignment` and
        :meth:`stress_mask` (same draws, same ufuncs, same cache stores --
        only the call frames and dispatch are gone): it runs once per write
        on the profiling hot path, where the per-call overhead is comparable
        to the draws themselves on small weak tails.
        """
        if pattern.stochastic:
            rng = self._rng
            a, b = pattern.alignment_beta
            if a == 2.0 and b == 2.0:
                # Median-of-three uniforms == Beta(2, 2); see _draw_beta.
                # Pure selection -- an in-place column sort picks the exact
                # same middle element as the min/max formula, in one call.
                u = rng.random((3, self._n_cells))
                u.sort(axis=0)
                draw = u[1]
            else:
                draw = rng.beta(a, b, size=self._n_cells)
            np.multiply(draw, self._random_cap, out=draw)
            self._cached[pattern.key] = draw
            if self._orientation is None:
                return draw, np.ones(self._n_cells)
            if pattern.name == "random":
                # bits_at()'s random branch, minus the name dispatch: one
                # uniform per cell thresholded at 1/2 (exactly
                # Bernoulli(1/2), same stream consumption as bits_at).  For
                # the inverted pattern the stored bit is ``1 - data``, and
                # with bits in {0, 1} the mask ``(1 - data) == orientation``
                # is exactly ``data != orientation``.  Comparing straight
                # into a float64 ``out`` fuses the compare and the
                # bool-to-float cast into one ufunc pass (True -> 1.0,
                # False -> 0.0 -- the exact values .astype(float) yields).
                data = rng.random(self._n_cells) < 0.5
                mask = np.empty(self._n_cells, dtype=np.float64)
                if pattern.inverted:
                    np.not_equal(data, self._orientation, out=mask)
                else:
                    np.equal(data, self._orientation, out=mask)
            else:
                bits = pattern.bits_at(
                    self._rows, self._cols, self._bits_per_row, rng
                )
                mask = (bits == self._orientation).astype(float)
            self._stress_cached[pattern.key] = mask
            return draw, mask
        return (
            self.alignment(pattern, fresh=True),
            self.stress_mask(pattern, fresh=True),
        )

    def excite_random_raw(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Raw uniforms for one random-pattern write (fleet batching).

        Consumes this chip's DPD stream exactly like the random branch of
        :meth:`excite`: one ``random(4n)`` call fills the identical doubles
        the ``(3, n)`` median draw plus the ``(n,)`` bit draw would (the
        generator fills arrays element by element from the same double
        sequence regardless of chunking).  The caller runs the shared
        post-processing -- column median, cap multiply, bit threshold,
        orientation compare -- over the stacked fleet and commits each
        chip's slice via :meth:`commit_random_write`.  Requires orientation
        modeling (without it :meth:`excite` draws no bits, so the raw
        consumption would differ).
        """
        if self._orientation is None:
            raise ProfilingError(
                "excite_random_raw requires orientation modeling; use excite()"
            )
        if out is not None:
            return self._rng.random(out=out)
        return self._rng.random(4 * self._n_cells)

    def commit_random_write(
        self, pattern: DataPattern, alignment: np.ndarray, stress: np.ndarray
    ) -> None:
        """Store one write's batched DPD state (see :meth:`excite_random_raw`)."""
        self._cached[pattern.key] = alignment
        self._stress_cached[pattern.key] = stress

    def effective_retention(self, mu_wc_s: np.ndarray, alignment: np.ndarray) -> np.ndarray:
        """Per-cell effective retention times under the given alignment."""
        s = self._susceptibility
        return mu_wc_s * (1.0 - s * alignment) / (1.0 - s)

    def worst_case_retention(self, mu_wc_s: np.ndarray) -> np.ndarray:
        """Alias for the worst-case (alignment = 1) retention times."""
        return np.asarray(mu_wc_s, dtype=np.float64)
