"""Data pattern dependence (DPD) model.

A cell's effective retention time depends on the data stored in it and in
its neighbours (Section 2.3.2).  We model this with two quantities:

* a per-cell *susceptibility* ``s`` in [0, dpd_susceptibility_max): how much
  the worst aggressor arrangement can degrade the cell relative to the most
  benign one; and
* a per-(cell, pattern) *alignment* ``a`` in [0, 1]: how closely a concrete
  test pattern approaches that cell's worst case.

The effective retention time under a pattern is::

    mu_eff = mu_wc * (1 - s*a) / (1 - s)

so alignment 1 recovers the worst-case retention ``mu_wc`` and alignment 0
yields the benign-case retention ``mu_wc / (1 - s)``.

Deterministic patterns get a fixed alignment per cell (drawn once from the
pattern family's Beta distribution and cached); the random pattern redraws
alignments on every write, capped below 1 -- which is exactly why random data
discovers the most failures over many iterations without ever guaranteeing
full coverage (Observation 3 / Figure 5).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from ..patterns import DataPattern


class DPDModel:
    """Per-cell data-pattern-dependence state for one chip.

    When constructed with cell positions and orientations (the normal path
    from a chip), the model also computes per-pattern *stress masks*: a cell
    leaks towards failure only while storing its charged logic value, so a
    pattern that writes the discharged value into a cell cannot make it fail
    at all -- the physical reason every pattern is tested together with its
    inverse (Section 3.2).
    """

    def __init__(
        self,
        susceptibility: np.ndarray,
        rng: np.random.Generator,
        random_alignment_cap: float,
        rows: Optional[np.ndarray] = None,
        cols: Optional[np.ndarray] = None,
        orientation: Optional[np.ndarray] = None,
        bits_per_row: int = 16384,
    ) -> None:
        if not (0.0 < random_alignment_cap < 1.0):
            raise ConfigurationError("random_alignment_cap must lie strictly in (0, 1)")
        if np.any(susceptibility < 0.0) or np.any(susceptibility >= 1.0):
            raise ConfigurationError("susceptibilities must lie in [0, 1)")
        self._susceptibility = np.asarray(susceptibility, dtype=np.float64)
        self._rng = rng
        self._random_cap = float(random_alignment_cap)
        self._cached: Dict[str, np.ndarray] = {}
        self._stress_cached: Dict[str, np.ndarray] = {}
        self._rows = None if rows is None else np.asarray(rows)
        self._cols = None if cols is None else np.asarray(cols)
        self._orientation = None if orientation is None else np.asarray(orientation)
        self._bits_per_row = bits_per_row
        if (self._rows is None) != (self._orientation is None) or (
            (self._cols is None) != (self._orientation is None)
        ):
            raise ConfigurationError(
                "rows, cols and orientation must be provided together or not at all"
            )

    @property
    def n_cells(self) -> int:
        return len(self._susceptibility)

    @property
    def susceptibility(self) -> np.ndarray:
        return self._susceptibility

    @property
    def models_orientation(self) -> bool:
        return self._orientation is not None

    def alignment(self, pattern: DataPattern, fresh: bool = False) -> np.ndarray:
        """Alignment vector of ``pattern`` across all cells.

        For stochastic (random-data) patterns a new vector is drawn on every
        call with ``fresh=True`` (i.e. on every write); repeated calls with
        ``fresh=False`` return the draw from the most recent write.
        """
        a, b = pattern.alignment_beta
        if pattern.stochastic:
            if fresh or pattern.key not in self._cached:
                draw = self._rng.beta(a, b, size=self.n_cells) * self._random_cap
                self._cached[pattern.key] = draw
            return self._cached[pattern.key]
        if pattern.key not in self._cached:
            self._cached[pattern.key] = self._rng.beta(a, b, size=self.n_cells)
        return self._cached[pattern.key]

    def stress_mask(self, pattern: DataPattern, fresh: bool = False) -> np.ndarray:
        """Per-cell mask: 1 where ``pattern`` stores the cell's charged value.

        Without orientation information (standalone DPD models in tests)
        every cell counts as stressed.  For the random pattern the stored
        bits -- and hence the mask -- are redrawn on every write.
        """
        if self._orientation is None:
            return np.ones(self.n_cells)
        if pattern.stochastic:
            if fresh or pattern.key not in self._stress_cached:
                bits = pattern.bits_at(self._rows, self._cols, self._bits_per_row, self._rng)
                self._stress_cached[pattern.key] = (bits == self._orientation).astype(float)
            return self._stress_cached[pattern.key]
        if pattern.key not in self._stress_cached:
            bits = pattern.bits_at(self._rows, self._cols, self._bits_per_row)
            self._stress_cached[pattern.key] = (bits == self._orientation).astype(float)
        return self._stress_cached[pattern.key]

    def excite(self, pattern: DataPattern) -> "tuple[np.ndarray, np.ndarray]":
        """One write's DPD state: (alignment, stress mask), fresh draws for
        stochastic patterns."""
        return (
            self.alignment(pattern, fresh=True),
            self.stress_mask(pattern, fresh=True),
        )

    def effective_retention(self, mu_wc_s: np.ndarray, alignment: np.ndarray) -> np.ndarray:
        """Per-cell effective retention times under the given alignment."""
        s = self._susceptibility
        return mu_wc_s * (1.0 - s * alignment) / (1.0 - s)

    def worst_case_retention(self, mu_wc_s: np.ndarray) -> np.ndarray:
        """Alias for the worst-case (alignment = 1) retention times."""
        return np.asarray(mu_wc_s, dtype=np.float64)
