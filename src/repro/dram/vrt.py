"""Variable retention time (VRT) as an episodic stochastic process.

VRT cells alternate between retention states according to a memoryless
random process (Section 2.3.1).  What a profiler observes is the paper's
*steady-state new-failure accumulation*: no matter how long you profile,
previously unseen cells keep failing at a rate ``A(t) = a * t^b`` cells/hour
(Figure 4), while the size of the per-iteration failing set stays roughly
constant because cells also *leave* the failing set at about the same rate
(Figure 3).

We model this directly as a marked Poisson process of *episodes*.  Each
episode places one cell into a low-retention state:

* arrival intensity for episodes with low-state retention below ``h`` is the
  vendor's ``A(h, temperature)``;
* the low-state retention ``mu_low`` of an arrival is distributed with CDF
  ``(mu/h)^b`` on (0, h] (the density implied by the power law);
* the episode persists for an exponentially distributed dwell time, after
  which the cell returns to its strong state.

Episodes are generated lazily up to a fixed horizon; exposures beyond the
horizon are rejected loudly rather than silently under-counting failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..conditions import REFERENCE_TEMPERATURE_C
from ..errors import ConfigurationError
from .geometry import GIBIBIT
from .vendor import VendorModel

_SECONDS_PER_HOUR = 3600.0


@dataclass
class _EpisodeBlock:
    """A batch of episodes generated during one advance."""

    cell_index: np.ndarray
    mu_low_s: np.ndarray
    start_s: np.ndarray
    end_s: np.ndarray


def _empty_block() -> _EpisodeBlock:
    return _EpisodeBlock(
        cell_index=np.empty(0, dtype=np.int64),
        mu_low_s=np.empty(0, dtype=np.float64),
        start_s=np.empty(0, dtype=np.float64),
        end_s=np.empty(0, dtype=np.float64),
    )


class VRTProcess:
    """Lazy generator of VRT low-retention episodes for one chip.

    Parameters
    ----------
    vendor:
        Vendor model providing the arrival power law and dwell time.
    capacity_bits:
        Chip capacity (arrival intensity scales linearly with it).
    horizon_s:
        Largest low-state retention time episodes are generated for.  Must
        cover the largest *effective* exposure the chip will experience.
    rng:
        Source of randomness.
    start_time_s:
        Simulated time at which the process begins.
    """

    def __init__(
        self,
        vendor: VendorModel,
        capacity_bits: int,
        horizon_s: float,
        rng: np.random.Generator,
        start_time_s: float = 0.0,
    ) -> None:
        if horizon_s <= 0.0:
            raise ConfigurationError(f"VRT horizon must be positive, got {horizon_s!r}")
        self._vendor = vendor
        self._capacity_bits = int(capacity_bits)
        self._capacity_gbit = capacity_bits / GIBIBIT
        self._horizon_s = float(horizon_s)
        self._rng = rng
        self._time_s = float(start_time_s)
        self._blocks: List[_EpisodeBlock] = []
        self._compacted: _EpisodeBlock = _empty_block()
        self._rate_memo: dict = {}

    # ------------------------------------------------------------------
    # Time evolution
    # ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        return self._horizon_s

    @property
    def time_s(self) -> float:
        return self._time_s

    def advance_to(self, time_s: float, temperature_c: float = REFERENCE_TEMPERATURE_C) -> None:
        """Generate episode arrivals in ``(self.time_s, time_s]``.

        The arrival intensity is evaluated at ``temperature_c``; callers that
        sweep temperature should advance in segments of constant temperature.
        """
        if time_s < self._time_s:
            raise ConfigurationError(
                f"cannot advance VRT process backwards ({time_s} < {self._time_s})"
            )
        dt_s = time_s - self._time_s
        if dt_s == 0.0:
            return
        rate_per_hour = self._rate_memo.get(temperature_c)
        if rate_per_hour is None:
            rate_per_hour = self._vendor.vrt_arrival_rate_per_hour(
                self._horizon_s, self._capacity_gbit, temperature_c
            )
            self._rate_memo[temperature_c] = rate_per_hour
        expected = rate_per_hour * dt_s / _SECONDS_PER_HOUR
        count = int(self._rng.poisson(expected))
        if count > 0:
            b = self._vendor.vrt_arrival_exponent
            u = self._rng.random(count)
            mu_low = self._horizon_s * u ** (1.0 / b)
            starts = self._time_s + self._rng.random(count) * dt_s
            dwell = self._rng.exponential(self._vendor.vrt_dwell_mean_s, size=count)
            cells = self._rng.integers(0, self._capacity_bits, size=count, dtype=np.int64)
            self._blocks.append(
                _EpisodeBlock(cell_index=cells, mu_low_s=mu_low, start_s=starts, end_s=starts + dwell)
            )
        self._time_s = time_s

    def advance_schedule(
        self,
        times_s: "np.ndarray",
        temperature_c: float = REFERENCE_TEMPERATURE_C,
    ) -> bool:
        """Try to advance through a whole ascending schedule in one draw.

        Equivalent to ``for t in times_s: advance_to(t, temperature_c)``
        *when no episode arrives anywhere in the schedule* -- by far the
        common case (most chips see zero episodes over an entire campaign
        grid).  The arrival counts for every positive-length segment are
        drawn as one vectorized Poisson call, which consumes the generator
        stream exactly as the equivalent sequence of scalar draws would;
        zero-length segments draw nothing, exactly like
        :meth:`advance_to`'s early return.

        Returns ``True`` after committing (time advanced to the last entry,
        generator state identical to the sequential walk).  If any segment
        would produce an arrival, the generator state is restored untouched
        and ``False`` is returned: the caller must replay the schedule with
        per-step :meth:`advance_to` calls, interleaving its queries, to
        reproduce the sequential episode bookkeeping bit for bit.
        """
        times = np.asarray(times_s, dtype=np.float64)
        if times.size == 0:
            return True
        if times[0] < self._time_s or np.any(np.diff(times) < 0.0):
            raise ConfigurationError(
                f"cannot advance VRT process backwards through schedule "
                f"(from {self._time_s})"
            )
        dts = np.diff(np.concatenate(([self._time_s], times)))
        dts = dts[dts > 0.0]
        if dts.size == 0:
            self._time_s = float(times[-1])
            return True
        rate_per_hour = self._rate_memo.get(temperature_c)
        if rate_per_hour is None:
            rate_per_hour = self._vendor.vrt_arrival_rate_per_hour(
                self._horizon_s, self._capacity_gbit, temperature_c
            )
            self._rate_memo[temperature_c] = rate_per_hour
        expected = rate_per_hour * dts / _SECONDS_PER_HOUR
        state = self._rng.bit_generator.state
        counts = self._rng.poisson(expected)
        if counts.any():
            self._rng.bit_generator.state = state
            return False
        self._time_s = float(times[-1])
        return True

    def _all_episodes(self) -> _EpisodeBlock:
        if self._blocks:
            merged = _EpisodeBlock(
                cell_index=np.concatenate(
                    [self._compacted.cell_index] + [b.cell_index for b in self._blocks]
                ),
                mu_low_s=np.concatenate(
                    [self._compacted.mu_low_s] + [b.mu_low_s for b in self._blocks]
                ),
                start_s=np.concatenate(
                    [self._compacted.start_s] + [b.start_s for b in self._blocks]
                ),
                end_s=np.concatenate([self._compacted.end_s] + [b.end_s for b in self._blocks]),
            )
            self._compacted = merged
            self._blocks = []
        return self._compacted

    @property
    def episode_count(self) -> int:
        return len(self._all_episodes().cell_index)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_exposure(self, exposure_s: float) -> None:
        # Tolerate float accumulation error at the exact boundary.
        if exposure_s > self._horizon_s * (1.0 + 1e-9):
            raise ConfigurationError(
                f"exposure {exposure_s!r}s exceeds the VRT generation horizon "
                f"{self._horizon_s!r}s; construct the chip with a larger max_trefi_s"
            )

    def failing_cells(self, now_s: float, exposure_s: float) -> np.ndarray:
        """Cells whose episode is active at ``now_s`` and fails the exposure.

        An episode fails the exposure when its low-state retention is below
        the exposure duration.  VRT low states are modelled as absolute
        retention values (the arrival intensity already carries the
        temperature dependence), so no further temperature scaling applies.
        """
        self._check_exposure(exposure_s)
        episodes = self._all_episodes()
        mask = (
            (episodes.start_s <= now_s)
            & (episodes.end_s > now_s)
            & (episodes.mu_low_s < exposure_s)
        )
        failing = episodes.cell_index[mask]
        if failing.size == 0:
            return failing
        return np.unique(failing)

    def episodes_overlapping(
        self, window_start_s: float, window_end_s: float, exposure_s: float
    ) -> np.ndarray:
        """Cells with a failing episode at any point inside the window.

        This is the ground-truth query: "which cells would fail a retention
        exposure of ``exposure_s`` at some point during the window?" -- used
        to build oracle failing sets for coverage accounting.
        """
        if window_end_s < window_start_s:
            raise ConfigurationError("window end precedes window start")
        self._check_exposure(exposure_s)
        episodes = self._all_episodes()
        mask = (
            (episodes.start_s < window_end_s)
            & (episodes.end_s > window_start_s)
            & (episodes.mu_low_s < exposure_s)
        )
        return np.unique(episodes.cell_index[mask])
