"""Vectorized evaluation of weak-cell failure probabilities.

Section 5.5 of the paper establishes that each cell's probability of
retention failure is a normal CDF in the refresh interval:

    P(fail | t) = Phi((t - mu) / sigma)

with per-cell means ``mu`` (lognormally distributed across cells) and
per-cell standard deviations ``sigma`` (also lognormal, Figure 6b).  Raising
the temperature multiplies both ``mu`` and ``sigma`` by the vendor's
retention scale factor -- shifting and narrowing the distribution exactly as
Figure 7 shows.

:class:`WeakCellPopulation` evaluates those probabilities for an entire
chip's weak tail in one vectorized pass, both for *observed* failures under a
concrete data pattern (with its DPD alignment) and for *oracle* failures
under the worst-case pattern.

Fast path
---------
The profiling inner loop evaluates the same (pattern, temperature) point
hundreds of times: 12 patterns x 16 iterations per profiling run, thousands
of runs per campaign.  Two structural facts make most of that work
redundant:

* for a deterministic pattern the DPD alignment -- and therefore the full
  ``mu_eff = effective_retention * scale`` array -- is identical on every
  write at a given temperature, and the exposure is constant across every
  read of a profiling run, so the *entire probability vector* can be
  computed once per (pattern, temperature, exposure) and reused;
* for a stochastic pattern the alignment is redrawn on every write, but
  most cells still have a vanishing failure probability: the Chernoff
  bound ``ndtr(z) <= 0.5 * exp(-z**2 / 2)`` (for ``z <= 0``) proves
  ``u >= p`` for almost every drawn uniform ``u`` without evaluating the
  CDF, so exact ``ndtr`` runs only over the few *candidate* cells whose
  uniform landed under the bound.

``ndtr`` also saturates in double precision -- exactly ``1.0`` at or beyond
:data:`Z_PIN_ONE` and exactly ``0.0`` at or beyond :data:`Z_PIN_ZERO` -- which
is what makes such cuts *exact* rather than approximate: a pinned or
excluded cell's probability is bit-equal to what the full CDF pass would
have produced.

The fast path memoizes, per (pattern, temperature), the scaled
effective-retention arrays, and per exposure the finished probability
vector; a read then reduces to one full-tail uniform draw and a vectorized
compare.  RNG-stream compatibility is preserved by
drawing uniforms for the full tail exactly like the reference path, so fast
and reference sampling are *byte-identical* -- the same cells fail, in the
same order, from the same generator state.  Cache entries are keyed by
``(pattern, temperature)`` and pinned to the exact alignment (and stress
mask) arrays they were built from, so a temperature change or a DPD redraw
can never reuse a stale entry; :meth:`WeakCellPopulation.invalidate_fast_cache`
drops everything explicitly (device reset, tests).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.special import ndtr

from ..conditions import Conditions
from ..errors import ConfigurationError
from .dpd import DPDModel
from .retention import WeakCellSample
from .vendor import VendorModel

#: z-score at or above which ``ndtr`` returns exactly 1.0 in double
#: precision (saturation starts near 8.3; 9.0 leaves margin).
Z_PIN_ONE = 9.0

#: z-score at or below which ``ndtr`` underflows to exactly 0.0 in double
#: precision (underflow completes near -38; -39.0 leaves margin).
Z_PIN_ZERO = -39.0

#: z-score at or below which the Chernoff bound ``0.5 * exp(-z**2 / 2)``
#: exceeds ``ndtr(z)`` by >= 43% -- far more than floating-point rounding
#: can bridge -- so ``u >= bound`` proves ``u >= ndtr(z)`` exactly.  Cells
#: above this threshold are always treated as candidates.
_CHERNOFF_Z_MAX = -0.5

#: Upper bound on memoized (pattern, temperature) states per population;
#: far above any realistic sweep (12 patterns x a handful of temperatures),
#: it only guards pathological temperature scans from unbounded growth.
_FAST_CACHE_MAX_ENTRIES = 256

#: Upper bound on memoized probability vectors per (pattern, temperature)
#: state; real profiling runs use a single exposure per run, so this only
#: guards pathological exposure sweeps from unbounded growth.
_FAST_CACHE_MAX_EXPOSURES = 64

_FAST_PATH_DEFAULT = os.environ.get("REPRO_FAST_PATH", "1") != "0"


def fast_path_default() -> bool:
    """Process-wide default for the profiling fast path.

    Seeded from the ``REPRO_FAST_PATH`` environment variable (any value
    other than ``"0"`` enables it) and adjustable at runtime via
    :func:`set_fast_path_default`.
    """
    return _FAST_PATH_DEFAULT


def set_fast_path_default(enabled: bool) -> bool:
    """Set the process-wide fast-path default; returns the previous value.

    Only populations (and chips) constructed *after* the change pick up the
    new default; existing instances keep the mode they resolved at
    construction.  The fast path is byte-identical to the reference
    implementation, so this toggle exists for benchmarking and equivalence
    testing, not correctness.
    """
    global _FAST_PATH_DEFAULT
    previous = _FAST_PATH_DEFAULT
    _FAST_PATH_DEFAULT = bool(enabled)
    return previous


@dataclass
class _FastPatternState:
    """Memoized per-(pattern, temperature) evaluation state.

    ``mu_eff``/``sigma_eff`` are the scaled effective-retention arrays --
    the expensive alignment-dependent product that the reference path
    recomputes on every read.  ``alignment`` is the exact alignment array
    the state was built from; lookups verify identity so a DPD redraw
    invalidates the entry.

    ``p_by_exposure`` caches, per exposure, the finished probability vector
    (``ndtr`` evaluated once via the reference expression, stress mask
    already multiplied in).  Each entry is pinned to the stress-mask array
    it was built with, so a different mask misses the cache rather than
    reusing a stale product.
    """

    alignment: np.ndarray
    mu_eff: np.ndarray
    sigma_eff: np.ndarray
    p_by_exposure: Dict[float, Tuple[Optional[np.ndarray], np.ndarray]] = field(
        default_factory=dict
    )


class WeakCellPopulation:
    """The instantiated weak tail of one chip, with its failure model.

    ``fast_path`` selects the memoized marginal-band evaluation for
    :meth:`sample_failures` (byte-identical to the reference computation);
    ``None`` resolves the process-wide default at construction time.
    """

    def __init__(
        self,
        sample: WeakCellSample,
        vendor: VendorModel,
        dpd: DPDModel,
        fast_path: Optional[bool] = None,
    ) -> None:
        if dpd.n_cells != len(sample):
            raise ConfigurationError("DPD model size does not match weak-cell sample")
        self._sample = sample
        self._vendor = vendor
        self._dpd = dpd
        self._fast_path = fast_path_default() if fast_path is None else bool(fast_path)
        self._fast_states: Dict[Tuple[str, float], _FastPatternState] = {}
        self._scale_memo: Dict[float, float] = {}
        self._sigma_eff_memo: Dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Introspection (used by the characterization analyses)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sample)

    @property
    def indices(self) -> np.ndarray:
        return self._sample.indices

    @property
    def mu_wc_s(self) -> np.ndarray:
        """Worst-case-pattern failure-CDF means at the reference temperature."""
        return self._sample.mu_wc_s

    @property
    def sigma_s(self) -> np.ndarray:
        """Failure-CDF standard deviations at the reference temperature."""
        return self._sample.sigma_s

    @property
    def vrt_flag(self) -> np.ndarray:
        return self._sample.vrt_flag

    @property
    def dpd(self) -> DPDModel:
        return self._dpd

    @property
    def fast_path_enabled(self) -> bool:
        return self._fast_path

    def scaled_parameters(self, temperature_c: float) -> tuple:
        """(mu, sigma) arrays at the given ambient temperature (Figure 7)."""
        scale = self._vendor.retention_scale(temperature_c)
        return self._sample.mu_wc_s * scale, self._sample.sigma_s * scale

    # ------------------------------------------------------------------
    # Fast-path cache management
    # ------------------------------------------------------------------
    def retention_scale(self, temperature_c: float) -> float:
        """Memoized vendor retention scale factor for one temperature."""
        key = float(temperature_c)
        scale = self._scale_memo.get(key)
        if scale is None:
            scale = self._vendor.retention_scale(key)
            self._scale_memo[key] = scale
        return scale

    def invalidate_fast_cache(self) -> None:
        """Drop every memoized (pattern, temperature) evaluation state.

        Called on device reset (the DPD alignments will be redrawn) and
        available to any caller that mutates model state out-of-band.
        Entries are additionally self-invalidating: they are keyed by
        (pattern, temperature) and pinned to the exact alignment array they
        were built from, so temperature changes and DPD redraws miss the
        cache rather than reuse stale state even without an explicit call.
        """
        self._fast_states.clear()
        self._scale_memo.clear()
        self._sigma_eff_memo.clear()

    def _sigma_eff(self, temperature_c: float) -> np.ndarray:
        """Memoized ``sigma_s * scale`` -- alignment-independent, so one
        array serves every pattern at a given temperature.  The product is
        the exact expression the reference path computes."""
        key = float(temperature_c)
        sigma_eff = self._sigma_eff_memo.get(key)
        if sigma_eff is None:
            sigma_eff = self._sample.sigma_s * self.retention_scale(key)
            if len(self._sigma_eff_memo) >= _FAST_CACHE_MAX_ENTRIES:
                self._sigma_eff_memo.clear()
            self._sigma_eff_memo[key] = sigma_eff
        return sigma_eff

    def _fast_state(
        self, pattern_key: str, temperature_c: float, alignment: np.ndarray
    ) -> _FastPatternState:
        key = (pattern_key, float(temperature_c))
        state = self._fast_states.get(key)
        if state is not None and state.alignment is alignment:
            return state
        scale = self.retention_scale(temperature_c)
        # Exactly the reference expression, term for term, so the cached
        # values are bit-equal to what failure_probabilities computes.
        mu_eff = self._dpd.effective_retention(self._sample.mu_wc_s, alignment) * scale
        state = _FastPatternState(
            alignment=alignment,
            mu_eff=mu_eff,
            sigma_eff=self._sigma_eff(temperature_c),
        )
        if len(self._fast_states) >= _FAST_CACHE_MAX_ENTRIES:
            self._fast_states.clear()
        self._fast_states[key] = state
        return state

    # ------------------------------------------------------------------
    # Failure evaluation
    # ------------------------------------------------------------------
    def failure_probabilities(
        self,
        exposure_s: float,
        temperature_c: float,
        alignment: np.ndarray,
        stressed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-cell failure probability for one retention exposure.

        ``alignment`` is the DPD alignment vector of the written pattern;
        ``stressed`` masks out cells currently storing their discharged
        value, which cannot lose charge and therefore cannot fail.

        This is the *reference* evaluation: a full-tail ``ndtr`` pass with
        no memoization.  The fast path in :meth:`sample_failures` is tested
        byte-identical against it.
        """
        if exposure_s < 0.0:
            raise ConfigurationError(f"exposure must be non-negative, got {exposure_s!r}")
        if exposure_s == 0.0:
            return np.zeros(len(self._sample))
        scale = self._vendor.retention_scale(temperature_c)
        mu_eff = self._dpd.effective_retention(self._sample.mu_wc_s, alignment) * scale
        sigma_eff = self._sample.sigma_s * scale
        p = ndtr((exposure_s - mu_eff) / sigma_eff)
        if stressed is not None:
            p = p * stressed
        return p

    def worst_case_probabilities(self, exposure_s: float, temperature_c: float) -> np.ndarray:
        """Failure probabilities under the worst-case data pattern."""
        ones = np.ones(len(self._sample))
        return self.failure_probabilities(exposure_s, temperature_c, ones)

    def sample_failures(
        self,
        exposure_s: float,
        temperature_c: float,
        alignment: np.ndarray,
        rng: np.random.Generator,
        stressed: Optional[np.ndarray] = None,
        pattern_key: Optional[str] = None,
        stochastic: bool = True,
    ) -> np.ndarray:
        """Bernoulli-sample one read-out: flat indices of cells that failed.

        ``pattern_key``/``stochastic`` identify the written pattern so the
        fast path can memoize per-(pattern, temperature) state for
        deterministic patterns; callers that only have an alignment vector
        can omit them and still get the banded fast evaluation.  Fast and
        reference paths consume the RNG identically (one full-tail uniform
        draw) and return identical index arrays.
        """
        if not self._fast_path:
            p = self.failure_probabilities(exposure_s, temperature_c, alignment, stressed)
            failed = rng.random(len(p)) < p
            return self._sample.indices[failed]
        if exposure_s < 0.0:
            raise ConfigurationError(f"exposure must be non-negative, got {exposure_s!r}")
        n = len(self._sample)
        if exposure_s == 0.0:
            # The reference path draws uniforms even for a zero exposure;
            # match it so the generator state stays aligned.
            rng.random(n)
            return self._sample.indices[:0]
        if pattern_key is not None and not stochastic:
            failed = self._sample_deterministic_fast(
                exposure_s, temperature_c, pattern_key, alignment, stressed, rng
            )
        else:
            failed = self._sample_banded_fast(
                exposure_s, temperature_c, alignment, stressed, rng
            )
        return self._sample.indices[failed]

    def _sample_deterministic_fast(
        self,
        exposure_s: float,
        temperature_c: float,
        pattern_key: str,
        alignment: np.ndarray,
        stressed: Optional[np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Memoized probability-vector sampling for a deterministic pattern.

        The exposure is constant across every read of a profiling run, so
        the per-cell probabilities are computed once per (pattern,
        temperature, exposure) and every subsequent read is a single
        uniform draw plus a vectorized compare.
        """
        state = self._fast_state(pattern_key, temperature_c, alignment)
        key = float(exposure_s)
        entry = state.p_by_exposure.get(key)
        if entry is None or entry[0] is not stressed:
            # One full ndtr pass -- the reference expression, term for
            # term -- amortized over every subsequent read at this
            # (pattern, temperature, exposure) point.
            p = ndtr((exposure_s - state.mu_eff) / state.sigma_eff)
            if stressed is not None:
                p = p * stressed
            if len(state.p_by_exposure) >= _FAST_CACHE_MAX_EXPOSURES:
                state.p_by_exposure.clear()
            entry = (stressed, p)
            state.p_by_exposure[key] = entry
        return rng.random(len(self._sample)) < entry[1]

    def _sample_banded_fast(
        self,
        exposure_s: float,
        temperature_c: float,
        alignment: np.ndarray,
        stressed: Optional[np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Chernoff-cut sampling without memoization (stochastic patterns).

        The alignment changes on every write, so there is nothing to
        memoize -- but almost every cell's failure probability is tiny, and
        a read only needs ``ndtr(z)`` exactly when the drawn uniform might
        land under it.  For ``z <= _CHERNOFF_Z_MAX`` the Chernoff bound
        ``0.5 * exp(-z**2 / 2)`` dominates ``ndtr(z)`` with >= 43% slack,
        so ``u >= bound`` proves the cell did not fail; the exact CDF runs
        only over the few candidates whose uniform fell under the bound
        (plus all cells above the threshold).
        """
        scale = self.retention_scale(temperature_c)
        mu_eff = self._dpd.effective_retention(self._sample.mu_wc_s, alignment) * scale
        z = (exposure_s - mu_eff) / self._sigma_eff(temperature_c)
        u = rng.random(len(z))
        # Clamp the exponent: deep-tail cells would otherwise push exp()
        # into the subnormal slow path, and raising the bound (to ~4e-27)
        # only makes it more conservative -- never less correct.
        bound = 0.5 * np.exp(np.maximum(-0.5 * z * z, -60.0))
        candidates = np.flatnonzero((z > _CHERNOFF_Z_MAX) | (u < bound))
        failed = np.zeros(len(z), dtype=bool)
        if len(candidates):
            p = ndtr(z[candidates])
            if stressed is not None:
                p = p * stressed[candidates]
            failed[candidates] = u[candidates] < p
        return failed

    def oracle_failing(self, conditions: Conditions, p_min: float = 0.05) -> np.ndarray:
        """Ground-truth failing set at ``conditions``.

        A cell belongs to the set if its worst-case-pattern failure
        probability at the target conditions is at least ``p_min`` -- i.e. it
        has a non-negligible chance of failing during actual operation, which
        is exactly the population coverage and false-positive accounting must
        be measured against.
        """
        if not (0.0 < p_min <= 1.0):
            raise ConfigurationError(f"p_min must lie in (0, 1], got {p_min!r}")
        p = self.worst_case_probabilities(conditions.trefi, conditions.temperature)
        return self._sample.indices[p >= p_min]
