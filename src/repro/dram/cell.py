"""Vectorized evaluation of weak-cell failure probabilities.

Section 5.5 of the paper establishes that each cell's probability of
retention failure is a normal CDF in the refresh interval:

    P(fail | t) = Phi((t - mu) / sigma)

with per-cell means ``mu`` (lognormally distributed across cells) and
per-cell standard deviations ``sigma`` (also lognormal, Figure 6b).  Raising
the temperature multiplies both ``mu`` and ``sigma`` by the vendor's
retention scale factor -- shifting and narrowing the distribution exactly as
Figure 7 shows.

:class:`WeakCellPopulation` evaluates those probabilities for an entire
chip's weak tail in one vectorized pass, both for *observed* failures under a
concrete data pattern (with its DPD alignment) and for *oracle* failures
under the worst-case pattern.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import ndtr

from ..conditions import Conditions
from ..errors import ConfigurationError
from .dpd import DPDModel
from .retention import WeakCellSample
from .vendor import VendorModel


class WeakCellPopulation:
    """The instantiated weak tail of one chip, with its failure model."""

    def __init__(self, sample: WeakCellSample, vendor: VendorModel, dpd: DPDModel) -> None:
        if dpd.n_cells != len(sample):
            raise ConfigurationError("DPD model size does not match weak-cell sample")
        self._sample = sample
        self._vendor = vendor
        self._dpd = dpd

    # ------------------------------------------------------------------
    # Introspection (used by the characterization analyses)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sample)

    @property
    def indices(self) -> np.ndarray:
        return self._sample.indices

    @property
    def mu_wc_s(self) -> np.ndarray:
        """Worst-case-pattern failure-CDF means at the reference temperature."""
        return self._sample.mu_wc_s

    @property
    def sigma_s(self) -> np.ndarray:
        """Failure-CDF standard deviations at the reference temperature."""
        return self._sample.sigma_s

    @property
    def vrt_flag(self) -> np.ndarray:
        return self._sample.vrt_flag

    @property
    def dpd(self) -> DPDModel:
        return self._dpd

    def scaled_parameters(self, temperature_c: float) -> tuple:
        """(mu, sigma) arrays at the given ambient temperature (Figure 7)."""
        scale = self._vendor.retention_scale(temperature_c)
        return self._sample.mu_wc_s * scale, self._sample.sigma_s * scale

    # ------------------------------------------------------------------
    # Failure evaluation
    # ------------------------------------------------------------------
    def failure_probabilities(
        self,
        exposure_s: float,
        temperature_c: float,
        alignment: np.ndarray,
        stressed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-cell failure probability for one retention exposure.

        ``alignment`` is the DPD alignment vector of the written pattern;
        ``stressed`` masks out cells currently storing their discharged
        value, which cannot lose charge and therefore cannot fail.
        """
        if exposure_s < 0.0:
            raise ConfigurationError(f"exposure must be non-negative, got {exposure_s!r}")
        if exposure_s == 0.0:
            return np.zeros(len(self._sample))
        scale = self._vendor.retention_scale(temperature_c)
        mu_eff = self._dpd.effective_retention(self._sample.mu_wc_s, alignment) * scale
        sigma_eff = self._sample.sigma_s * scale
        p = ndtr((exposure_s - mu_eff) / sigma_eff)
        if stressed is not None:
            p = p * stressed
        return p

    def worst_case_probabilities(self, exposure_s: float, temperature_c: float) -> np.ndarray:
        """Failure probabilities under the worst-case data pattern."""
        ones = np.ones(len(self._sample))
        return self.failure_probabilities(exposure_s, temperature_c, ones)

    def sample_failures(
        self,
        exposure_s: float,
        temperature_c: float,
        alignment: np.ndarray,
        rng: np.random.Generator,
        stressed: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Bernoulli-sample one read-out: flat indices of cells that failed."""
        p = self.failure_probabilities(exposure_s, temperature_c, alignment, stressed)
        failed = rng.random(len(p)) < p
        return self._sample.indices[failed]

    def oracle_failing(self, conditions: Conditions, p_min: float = 0.05) -> np.ndarray:
        """Ground-truth failing set at ``conditions``.

        A cell belongs to the set if its worst-case-pattern failure
        probability at the target conditions is at least ``p_min`` -- i.e. it
        has a non-negligible chance of failing during actual operation, which
        is exactly the population coverage and false-positive accounting must
        be measured against.
        """
        if not (0.0 < p_min <= 1.0):
            raise ConfigurationError(f"p_min must lie in (0, 1], got {p_min!r}")
        p = self.worst_case_probabilities(conditions.trefi, conditions.temperature)
        return self._sample.indices[p >= p_min]
