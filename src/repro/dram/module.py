"""Multi-chip DRAM modules.

The paper's end-to-end evaluation uses modules of 32 chips (Figures 11-13).
A :class:`DRAMModule` presents the same command-level interface as a single
chip, broadcasting operations across its chips; per-pass IO time accumulates
linearly with total module capacity, matching the paper's measured scaling
(Section 7.3.1).  Cells are identified module-wide as ``(chip_index,
flat_index)`` tuples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from .. import rng as rng_mod
from ..clock import SimClock
from ..conditions import REFERENCE_TEMPERATURE_C, Conditions
from ..errors import ConfigurationError
from ..patterns import DataPattern
from .chip import DEFAULT_GEOMETRY, SimulatedDRAMChip
from .geometry import ChipGeometry
from .vendor import VENDOR_B, VendorModel

ModuleCellRef = Tuple[int, int]


class DRAMModule:
    """A module of identically configured chips sharing one clock."""

    def __init__(self, chips: Sequence[SimulatedDRAMChip]) -> None:
        if not chips:
            raise ConfigurationError("a module needs at least one chip")
        clock = chips[0].clock
        for chip in chips[1:]:
            if chip.clock is not clock:
                raise ConfigurationError("all chips in a module must share one clock")
        self.chips: List[SimulatedDRAMChip] = list(chips)
        self.clock = clock

    @classmethod
    def build(
        cls,
        n_chips: int = 32,
        vendor: VendorModel = VENDOR_B,
        geometry: ChipGeometry = DEFAULT_GEOMETRY,
        seed: int = rng_mod.DEFAULT_SEED,
        clock: Optional[SimClock] = None,
        max_trefi_s: float = 2.6,
        max_temperature_c: float = 55.0,
        temperature_c: float = REFERENCE_TEMPERATURE_C,
    ) -> "DRAMModule":
        """Construct a module of ``n_chips`` identically configured chips."""
        if n_chips <= 0:
            raise ConfigurationError(f"n_chips must be positive, got {n_chips!r}")
        clock = clock if clock is not None else SimClock()
        chips = [
            SimulatedDRAMChip(
                vendor=vendor,
                geometry=geometry,
                seed=seed,
                chip_id=i,
                clock=clock,
                max_trefi_s=max_trefi_s,
                max_temperature_c=max_temperature_c,
                temperature_c=temperature_c,
            )
            for i in range(n_chips)
        ]
        return cls(chips)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity_bits(self) -> int:
        return sum(chip.capacity_bits for chip in self.chips)

    @property
    def temperature_c(self) -> float:
        return self.chips[0].temperature_c

    @property
    def max_trefi_s(self) -> float:
        return min(chip.max_trefi_s for chip in self.chips)

    @property
    def pattern_io_seconds(self) -> float:
        """One full-module pattern pass: chip IO accumulates linearly."""
        return sum(chip.pattern_io_seconds for chip in self.chips)

    def expected_ber(self, conditions: Conditions) -> float:
        """Capacity-weighted average of the chips' analytic BER."""
        total = sum(chip.expected_ber(conditions) * chip.capacity_bits for chip in self.chips)
        return total / self.capacity_bits

    # ------------------------------------------------------------------
    # Command interface (same shape as a single chip)
    # ------------------------------------------------------------------
    def set_temperature(self, temperature_c: float) -> None:
        for chip in self.chips:
            chip.set_temperature(temperature_c)

    def write_pattern(self, pattern: DataPattern) -> None:
        for chip in self.chips:
            chip.write_pattern(pattern)

    def disable_refresh(self) -> None:
        for chip in self.chips:
            chip.disable_refresh()

    def enable_refresh(self) -> None:
        for chip in self.chips:
            chip.enable_refresh()

    def wait(self, seconds: float) -> None:
        self.clock.advance(seconds)
        for chip in self.chips:
            chip.sync()

    def read_errors(self) -> Set[ModuleCellRef]:
        """Module-wide failing cells as ``(chip_index, flat_index)`` refs."""
        failures: Set[ModuleCellRef] = set()
        for chip_index, chip in enumerate(self.chips):
            for flat in chip.read_errors():
                failures.add((chip_index, int(flat)))
        return failures

    def oracle_failing_set(
        self,
        conditions: Conditions,
        p_min: float = 0.05,
        window: Optional[Tuple[float, float]] = None,
    ) -> Set[ModuleCellRef]:
        failures: Set[ModuleCellRef] = set()
        for chip_index, chip in enumerate(self.chips):
            for flat in chip.oracle_failing_set(conditions, p_min=p_min, window=window):
                failures.add((chip_index, int(flat)))
        return failures

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        gb = self.capacity_bits / (1 << 30)
        return f"DRAMModule(chips={len(self.chips)}, capacity={gb:g}Gb)"
