"""Command-level interface records for the simulated testing infrastructure.

The paper's infrastructure "provides precise control over DRAM commands,
which we verified via a logic analyzer by probing the DRAM command bus"
(Section 4).  Our equivalent: every operation a profiler performs on a
simulated chip is recorded as a :class:`CommandRecord` in a
:class:`CommandTrace`, and :meth:`CommandTrace.verify_protocol` plays the
logic analyzer's role -- asserting that the observed command sequence is a
legal retention-test sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from .. import obs


class Command(enum.Enum):
    """Operations visible on the simulated command bus."""

    WRITE_PATTERN = "write_pattern"
    READ_COMPARE = "read_compare"
    REFRESH_DISABLE = "refresh_disable"
    REFRESH_ENABLE = "refresh_enable"
    WAIT = "wait"
    SET_TEMPERATURE = "set_temperature"


@dataclass(frozen=True)
class CommandRecord:
    """One timestamped command observed on the bus."""

    time: float
    command: Command
    detail: str = ""


class ProtocolViolation(Exception):
    """Raised by :meth:`CommandTrace.verify_protocol` on an illegal sequence."""


@dataclass
class CommandTrace:
    """An append-only log of commands issued to a chip."""

    records: List[CommandRecord] = field(default_factory=list)
    #: Memoized (registry, generation, {command: (counter, histogram)}).
    #: This is the hottest instrumentation site in the simulator (every
    #: command on every chip), so series handles are resolved once per
    #: command kind and reused until the active registry changes (a
    #: worker-side ``obs.capture()``) or is reset (generation bump).
    _obs_series: Optional[tuple] = field(default=None, repr=False, compare=False)

    def _series_for(self, command: Command):
        registry = obs.get().metrics
        cache = self._obs_series
        if cache is None or cache[0] is not registry or cache[1] != registry.generation:
            cache = (registry, registry.generation, {})
            self._obs_series = cache
        pair = cache[2].get(command)
        if pair is None:
            pair = (
                registry.series(obs.Counter, "chip.commands", {"command": command.value}),
                registry.series(obs.Histogram, "chip.sim_seconds", {"command": command.value}),
            )
            cache[2][command] = pair
        return pair

    def append(self, time: float, command: Command, detail: str = "") -> None:
        # Observability piggybacks on the trace: each record's timestamp is
        # the simulated clock *after* the command completed, so the delta to
        # the previous record is the simulated time this command consumed.
        # The first record has no predecessor on this trace and contributes
        # only to the command count.  Pure observation -- recording reads
        # the trace, never alters it.
        if obs.enabled():
            command_counter, sim_seconds = self._series_for(command)
            command_counter.inc()
            if self.records:
                sim_seconds.observe(time - self.records[-1].time)
        self.records.append(CommandRecord(time=time, command=command, detail=detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CommandRecord]:
        return iter(self.records)

    def of_type(self, command: Command) -> List[CommandRecord]:
        """All records of one command type, in order."""
        return [r for r in self.records if r.command is command]

    def exposures(self) -> List[Tuple[float, float]]:
        """(start, end) pairs of refresh-disabled windows, as a logic analyzer
        would reconstruct them from the bus."""
        windows: List[Tuple[float, float]] = []
        start: Optional[float] = None
        for record in self.records:
            if record.command is Command.REFRESH_DISABLE:
                start = record.time
            elif record.command is Command.REFRESH_ENABLE and start is not None:
                windows.append((start, record.time))
                start = None
        return windows

    def verify_protocol(self) -> None:
        """Assert the trace is a legal retention-testing sequence.

        Rules enforced (mirroring what the real command bus allows):

        * timestamps are non-decreasing;
        * REFRESH_DISABLE / REFRESH_ENABLE strictly alternate;
        * every READ_COMPARE is preceded by a WRITE_PATTERN.
        """
        last_time = float("-inf")
        refresh_disabled = False
        pattern_written = False
        for i, record in enumerate(self.records):
            if record.time < last_time:
                raise ProtocolViolation(
                    f"record {i}: time {record.time} precedes previous {last_time}"
                )
            last_time = record.time
            if record.command is Command.REFRESH_DISABLE:
                if refresh_disabled:
                    raise ProtocolViolation(f"record {i}: refresh disabled twice in a row")
                refresh_disabled = True
            elif record.command is Command.REFRESH_ENABLE:
                if not refresh_disabled:
                    raise ProtocolViolation(f"record {i}: refresh enabled while already enabled")
                refresh_disabled = False
            elif record.command is Command.WRITE_PATTERN:
                pattern_written = True
            elif record.command is Command.READ_COMPARE:
                if not pattern_written:
                    raise ProtocolViolation(f"record {i}: read-compare before any pattern write")
