"""REAPER: reach profiling for DRAM retention failures.

A from-scratch reproduction of Patel, Kim & Mutlu, *"The Reach Profiler
(REAPER): Enabling the Mitigation of DRAM Retention Failures via Profiling
at Aggressive Conditions"* (ISCA 2017), built on a calibrated simulation of
LPDDR4 retention behaviour in place of the paper's 368 physical chips.

Quick start::

    from repro import Conditions, ReachDelta, ReachProfiler, SimulatedDRAMChip

    chip = SimulatedDRAMChip()
    target = Conditions(trefi=1.024, temperature=45.0)
    profiler = ReachProfiler(reach=ReachDelta(delta_trefi=0.250))
    profile = profiler.run(chip, target)
    print(len(profile), "failing cells in", profile.runtime_seconds, "s")

Subpackages
-----------
``repro.core``
    The paper's contribution: brute-force and reach profilers, REAPER,
    metrics, the tradeoff explorer, ECC-based longevity, and scheduling.
``repro.dram``
    The simulated LPDDR4 substrate (retention tails, VRT, DPD, vendors,
    chips, modules, SPD).
``repro.patterns``
    Test data patterns.
``repro.ecc``
    UBER/RBER math, a real SECDED codec, and the ECC-scrubbing baseline.
``repro.mitigation``
    ArchShield, RAIDR, SECRET, row map-out, Bloom filters.
``repro.infra``
    PID-controlled thermal chamber and multi-chip testbed.
``repro.sysperf``
    Bank-level memory simulation, workloads, power, and the Eq-8/9
    end-to-end integration.
``repro.analysis``
    One driver per paper figure/table, plus fitting and reporting helpers.
"""

from .clock import ClockStopwatch, SimClock
from .conditions import (
    Conditions,
    HEADLINE_REACH,
    JEDEC_TREFW,
    REFERENCE_TEMPERATURE_C,
    ReachDelta,
)
from .core import (
    BruteForceProfiler,
    REAPER,
    ReachProfiler,
    RetentionProfile,
    coverage,
    evaluate,
    false_positive_rate,
    longevity_for_system,
)
from .dram import DRAMModule, SimulatedDRAMChip, VENDOR_A, VENDOR_B, VENDOR_C
from .errors import (
    CapacityError,
    ClockError,
    CommandSequenceError,
    ConfigurationError,
    EccError,
    ProfilingError,
    ReproError,
)
from .patterns import STANDARD_PATTERNS, DataPattern

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SimClock",
    "ClockStopwatch",
    "Conditions",
    "ReachDelta",
    "HEADLINE_REACH",
    "JEDEC_TREFW",
    "REFERENCE_TEMPERATURE_C",
    "BruteForceProfiler",
    "ReachProfiler",
    "REAPER",
    "RetentionProfile",
    "coverage",
    "false_positive_rate",
    "evaluate",
    "longevity_for_system",
    "SimulatedDRAMChip",
    "DRAMModule",
    "VENDOR_A",
    "VENDOR_B",
    "VENDOR_C",
    "DataPattern",
    "STANDARD_PATTERNS",
    "ReproError",
    "ConfigurationError",
    "CommandSequenceError",
    "ProfilingError",
    "EccError",
    "CapacityError",
    "ClockError",
]
