"""Profiling data patterns (Section 3.2 of the paper).

Retention failures are data-pattern dependent (DPD), so effective profiling
writes many different patterns: solid 0s/1s, checkerboards, row/column
stripes, walking 1s/0s, random data, and their inverses.
"""

from .datapatterns import (
    CHECKERBOARD,
    COLUMN_STRIPE,
    RANDOM,
    ROW_STRIPE,
    SOLID_ZERO,
    STANDARD_PATTERNS,
    BASE_PATTERNS,
    WALKING_ONE,
    DataPattern,
    pattern_by_key,
)

__all__ = [
    "DataPattern",
    "SOLID_ZERO",
    "CHECKERBOARD",
    "ROW_STRIPE",
    "COLUMN_STRIPE",
    "WALKING_ONE",
    "RANDOM",
    "BASE_PATTERNS",
    "STANDARD_PATTERNS",
    "pattern_by_key",
]
