"""Canonical DRAM test data patterns and their DPD characteristics.

Each :class:`DataPattern` plays two roles:

1. **Concrete data generation** (:meth:`DataPattern.fill_row` /
   :meth:`DataPattern.fill`): produce the actual bit matrix a tester would
   write into the array.  This is what the ECC and mitigation layers consume
   in tests, and what a real SoftMC-style infrastructure would transmit.

2. **DPD excitation model** (:attr:`DataPattern.alignment_beta`,
   :attr:`DataPattern.stochastic`): how well the pattern approaches each
   cell's *worst-case* aggressor arrangement.  The retention simulator maps a
   pattern to a per-cell *alignment* in [0, 1]; alignment 1 means the pattern
   realizes the cell's worst case.  Deterministic patterns get a fixed
   alignment per (cell, pattern) pair drawn from a Beta distribution;
   the random pattern redraws alignments on every write, which is why it
   discovers the most failures over many iterations (Observation 3) yet can
   never guarantee full coverage on its own (its draws are capped below 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DataPattern:
    """A named test data pattern, possibly the inverse of a base pattern.

    Parameters
    ----------
    name:
        Base pattern name (``"solid"``, ``"checkerboard"``, ...).
    inverted:
        Whether this is the bitwise inverse of the base pattern.
    stochastic:
        True for random data: each write produces fresh content, and the DPD
        alignment is redrawn on every write.
    alignment_beta:
        (alpha, beta) parameters of the Beta distribution from which the
        per-cell DPD alignment of this pattern family is drawn.
    """

    name: str
    inverted: bool = False
    stochastic: bool = False
    alignment_beta: Tuple[float, float] = (2.0, 2.0)

    def __post_init__(self) -> None:
        a, b = self.alignment_beta
        if a <= 0.0 or b <= 0.0:
            raise ConfigurationError(f"Beta parameters must be positive, got {self.alignment_beta!r}")
        # ``key`` sits on the profiling hot path (cache lookups on every
        # write and read); precompute it once instead of concatenating
        # strings per access.  Frozen dataclass, hence object.__setattr__.
        object.__setattr__(self, "key", self.name + ("~" if self.inverted else ""))

    @property
    def inverse(self) -> "DataPattern":
        """The bitwise inverse of this pattern."""
        return replace(self, inverted=not self.inverted)

    # ------------------------------------------------------------------
    # Concrete data generation
    # ------------------------------------------------------------------
    def fill_row(
        self,
        row: int,
        bits_per_row: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Return the bit vector (uint8 of 0/1) this pattern writes into ``row``."""
        cols = np.arange(bits_per_row)
        if self.name == "solid":
            data = np.zeros(bits_per_row, dtype=np.uint8)
        elif self.name == "checkerboard":
            data = ((cols + row) & 1).astype(np.uint8)
        elif self.name == "rowstripe":
            data = np.full(bits_per_row, row & 1, dtype=np.uint8)
        elif self.name == "colstripe":
            data = (cols & 1).astype(np.uint8)
        elif self.name == "walking":
            # A walking 1 in a background of 0s; the 1 advances one column
            # position per row, wrapping around the row buffer.
            data = np.zeros(bits_per_row, dtype=np.uint8)
            data[row % bits_per_row] = 1
        elif self.name == "random":
            if rng is None:
                raise ConfigurationError("random pattern requires an RNG to generate data")
            data = rng.integers(0, 2, size=bits_per_row, dtype=np.uint8)
        else:
            raise ConfigurationError(f"unknown pattern name {self.name!r}")
        if self.inverted:
            data = (1 - data).astype(np.uint8)
        return data

    def fill(
        self,
        rows: int,
        bits_per_row: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Return the full (rows x bits_per_row) bit matrix for an array."""
        return np.stack([self.fill_row(r, bits_per_row, rng) for r in range(rows)])

    def bits_at(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        bits_per_row: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """The bit this pattern stores at each (row, col) position, vectorized.

        Used by the retention simulator to decide which cells a pattern
        *stresses*: a true-cell (charged = 1) only leaks towards failure
        while storing a 1, an anti-cell while storing a 0.
        """
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        if self.name == "solid":
            data = np.zeros(len(rows), dtype=np.uint8)
        elif self.name == "checkerboard":
            data = ((rows + cols) & 1).astype(np.uint8)
        elif self.name == "rowstripe":
            data = (rows & 1).astype(np.uint8)
        elif self.name == "colstripe":
            data = (cols & 1).astype(np.uint8)
        elif self.name == "walking":
            data = (cols == (rows % bits_per_row)).astype(np.uint8)
        elif self.name == "random":
            if rng is None:
                raise ConfigurationError("random pattern requires an RNG to generate data")
            # One uniform per cell thresholded at 1/2 -- exactly Bernoulli(1/2)
            # (binary64 uniforms in [0, 1) split evenly at 0.5) and several
            # times cheaper per call than the bounded-integer sampler, which
            # dominates profiling runs that redraw bits on every random write.
            data = (rng.random(len(rows)) < 0.5).view(np.uint8)
        else:
            raise ConfigurationError(f"unknown pattern name {self.name!r}")
        if self.inverted:
            data = (1 - data).astype(np.uint8)
        return data

    def __str__(self) -> str:
        return self.key


# The six base patterns used throughout the paper's characterization
# (Section 3.2 / Figure 5), with DPD alignment families chosen so that, as in
# the paper's LPDDR4 measurements (Observation 3), the random pattern
# discovers the most failures over many iterations while no single pattern
# finds everything.
SOLID_ZERO = DataPattern("solid", alignment_beta=(1.8, 2.6))
CHECKERBOARD = DataPattern("checkerboard", alignment_beta=(2.6, 2.0))
ROW_STRIPE = DataPattern("rowstripe", alignment_beta=(2.2, 2.2))
COLUMN_STRIPE = DataPattern("colstripe", alignment_beta=(2.2, 2.2))
WALKING_ONE = DataPattern("walking", alignment_beta=(2.0, 2.5))
RANDOM = DataPattern("random", stochastic=True, alignment_beta=(2.0, 2.0))

#: The six base patterns in canonical order.
BASE_PATTERNS = (
    SOLID_ZERO,
    CHECKERBOARD,
    ROW_STRIPE,
    COLUMN_STRIPE,
    WALKING_ONE,
    RANDOM,
)

#: The paper's standard profiling set: six data patterns and their inverses.
STANDARD_PATTERNS = tuple(
    p for base in BASE_PATTERNS for p in (base, base.inverse)
)

_BY_KEY: Dict[str, DataPattern] = {p.key: p for p in STANDARD_PATTERNS}


def pattern_by_key(key: str) -> DataPattern:
    """Look up a standard pattern by its :attr:`DataPattern.key`."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown pattern key {key!r}; known keys: {sorted(_BY_KEY)}"
        ) from None
