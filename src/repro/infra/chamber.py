"""Thermally controlled test chamber (Section 4 of the paper).

A first-order thermal plant (heater input versus loss to the room) closed
under a PID loop.  The chamber holds ambient temperature to within 0.25 degC
over a reliable range of 40-55 degC; DRAM device temperature sits 15 degC
above ambient, maintained by a separate local heating source.  The residual
control noise is deliberately retained -- it is the source of the "not
perfectly smooth" contours the paper notes under Figure 9.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import rng as rng_mod
from ..clock import SimClock
from ..conditions import (
    CHAMBER_MAX_AMBIENT_C,
    CHAMBER_MIN_AMBIENT_C,
    DRAM_SELF_HEATING_C,
)
from ..errors import ConfigurationError
from .pid import PIDController

#: Guaranteed control accuracy (degC) once settled.
CHAMBER_ACCURACY_C = 0.25


class ThermalChamber:
    """PID-stabilized ambient-temperature chamber."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        room_temperature_c: float = 22.0,
        initial_ambient_c: float = 40.0,
        seed: int = rng_mod.DEFAULT_SEED,
        control_period_s: float = 1.0,
    ) -> None:
        if control_period_s <= 0.0:
            raise ConfigurationError("control period must be positive")
        self.clock = clock if clock is not None else SimClock()
        self.room_temperature_c = room_temperature_c
        self.control_period_s = control_period_s
        self._ambient_c = float(initial_ambient_c)
        self._rng = rng_mod.derive(seed, "chamber")
        # Plant constants: heater ~0.5 degC/s at full power, loss time
        # constant of a few minutes -- a small bench chamber.
        self._heater_gain_c_per_s = 0.5
        self._loss_per_s = 0.002
        self._noise_c = 0.05
        self._pid = PIDController(kp=0.8, ki=0.01, kd=2.0, setpoint=initial_ambient_c)

    # ------------------------------------------------------------------
    @property
    def ambient_c(self) -> float:
        return self._ambient_c

    @property
    def dram_temperature_c(self) -> float:
        """Device temperature: ambient plus the local-heater offset."""
        return self._ambient_c + DRAM_SELF_HEATING_C

    @property
    def setpoint_c(self) -> float:
        return self._pid.setpoint

    # ------------------------------------------------------------------
    def set_target(self, ambient_c: float) -> None:
        """Retarget the chamber within its reliable range."""
        if not (CHAMBER_MIN_AMBIENT_C <= ambient_c <= CHAMBER_MAX_AMBIENT_C):
            raise ConfigurationError(
                f"target {ambient_c!r} degC outside the chamber's reliable range "
                f"[{CHAMBER_MIN_AMBIENT_C}, {CHAMBER_MAX_AMBIENT_C}]"
            )
        self._pid.reset(setpoint=ambient_c)

    def step(self, dt_s: Optional[float] = None) -> float:
        """Advance the plant and controller one period; returns ambient."""
        dt = dt_s if dt_s is not None else self.control_period_s
        power = self._pid.step(self._ambient_c, dt)
        heating = self._heater_gain_c_per_s * power
        loss = self._loss_per_s * (self._ambient_c - self.room_temperature_c)
        noise = self._rng.normal(0.0, self._noise_c) * np.sqrt(dt)
        self._ambient_c += (heating - loss) * dt + noise
        self.clock.advance(dt)
        return self._ambient_c

    def settle(self, tolerance_c: float = CHAMBER_ACCURACY_C, max_seconds: float = 3600.0) -> float:
        """Run the loop until ambient holds within tolerance of the setpoint.

        Requires the error to stay inside the tolerance band for 30
        consecutive control periods; returns the seconds spent settling.
        Raises :class:`~repro.errors.ConfigurationError` when the chamber
        cannot settle within ``max_seconds`` (e.g. unreachable setpoint).
        """
        start = self.clock.now
        consecutive = 0
        required = 30
        while self.clock.now - start < max_seconds:
            self.step()
            if abs(self._ambient_c - self._pid.setpoint) <= tolerance_c:
                consecutive += 1
                if consecutive >= required:
                    return self.clock.now - start
            else:
                consecutive = 0
        raise ConfigurationError(
            f"chamber failed to settle at {self._pid.setpoint} degC within {max_seconds}s"
        )
