"""Temperature-based reach profiling through the thermal chamber.

REAPER's firmware implementation only manipulates the refresh interval
(Section 7.1), but the paper's characterization shows temperature is an
equivalent reach knob (~10 degC per ~1 s near 45 degC, Figure 8).  For
systems that *do* control temperature -- a burn-in chamber, a maintenance
window with fan control -- this module runs the full operational loop:
raise the chamber setpoint, wait for the PID loop to settle, profile every
chip at the elevated temperature, then restore the original ambient.

All the costs are real simulated time: chamber settling is typically
minutes, which is exactly why the paper's firmware prefers the
refresh-interval knob for frequent online rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..conditions import Conditions
from ..core.bruteforce import BruteForceProfiler
from ..core.profile import RetentionProfile
from ..errors import ConfigurationError
from ..patterns import STANDARD_PATTERNS, DataPattern
from .testbed import TestBed


@dataclass(frozen=True)
class ThermalReachReport:
    """Outcome of one thermal-reach profiling session."""

    profiles: Dict[int, RetentionProfile]
    target: Conditions
    profiling_ambient_c: float
    heat_up_seconds: float
    cool_down_seconds: float
    profiling_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.heat_up_seconds + self.profiling_seconds + self.cool_down_seconds

    @property
    def thermal_overhead_fraction(self) -> float:
        """Share of the session spent waiting on the chamber, not profiling."""
        if self.total_seconds == 0.0:
            return 0.0
        return (self.heat_up_seconds + self.cool_down_seconds) / self.total_seconds


def profile_with_thermal_reach(
    bed: TestBed,
    target: Conditions,
    delta_temperature_c: float,
    iterations: int = 5,
    patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
) -> ThermalReachReport:
    """Profile every chip in the testbed at target + delta temperature.

    The profiling *interval* stays at the target interval -- the reach comes
    entirely from temperature, exercising the other axis of Figures 9/10.
    The chamber settling times on both edges are accounted against the
    session, and the original ambient is restored even if profiling fails.
    """
    if delta_temperature_c <= 0.0:
        raise ConfigurationError("thermal reach needs a positive temperature delta")
    if not bed.chips:
        raise ConfigurationError("the testbed has no chips to profile")
    original_ambient = bed.chamber.setpoint_c
    hot_ambient = target.temperature + delta_temperature_c

    heat_up = bed.set_ambient(hot_ambient)
    try:
        t0 = bed.clock.now
        profiler = BruteForceProfiler(patterns=patterns, iterations=iterations)
        profiles: Dict[int, RetentionProfile] = {}
        for chip in bed.chips:
            raw = profiler.run(
                chip, Conditions(trefi=target.trefi, temperature=chip.temperature_c)
            )
            # Re-label: the profile targets the original conditions.
            profiles[chip.chip_id] = RetentionProfile(
                failing=raw.failing,
                profiling_conditions=raw.profiling_conditions,
                target_conditions=target,
                patterns=raw.patterns,
                iterations=raw.iterations,
                runtime_seconds=raw.runtime_seconds,
                started_at=raw.started_at,
                records=raw.records,
                mechanism="reach-thermal",
            )
        profiling_seconds = bed.clock.now - t0
    finally:
        cool_down = bed.set_ambient(original_ambient)
    return ThermalReachReport(
        profiles=profiles,
        target=target,
        profiling_ambient_c=hot_ambient,
        heat_up_seconds=heat_up,
        cool_down_seconds=cool_down,
        profiling_seconds=profiling_seconds,
    )
