"""Simulated DRAM testing infrastructure (Section 4 of the paper)."""

from .chamber import CHAMBER_ACCURACY_C, ThermalChamber
from .pid import PIDController
from .testbed import FleetBed, TestBed
from .thermal_profiling import ThermalReachReport, profile_with_thermal_reach

__all__ = [
    "PIDController",
    "ThermalChamber",
    "CHAMBER_ACCURACY_C",
    "FleetBed",
    "TestBed",
    "ThermalReachReport",
    "profile_with_thermal_reach",
]
