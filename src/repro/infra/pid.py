"""A discrete PID controller.

The paper's testing infrastructure maintains ambient temperature "using
heaters and fans controlled via a microcontroller-based PID loop to within
an accuracy of 0.25 degC" (Section 4).  This is that loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import ConfigurationError


@dataclass
class PIDController:
    """Proportional-integral-derivative controller with output clamping.

    Parameters
    ----------
    kp, ki, kd:
        Controller gains.
    setpoint:
        Target process value.
    output_limits:
        (low, high) clamp on the control output; the integral term uses
        conditional integration (no wind-up past the clamp).
    """

    kp: float
    ki: float
    kd: float
    setpoint: float
    output_limits: Tuple[float, float] = (0.0, 1.0)
    _integral: float = field(default=0.0, repr=False)
    _last_error: float = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        low, high = self.output_limits
        if low >= high:
            raise ConfigurationError(f"output limits must satisfy low < high, got {self.output_limits!r}")

    def reset(self, setpoint: float = None) -> None:  # type: ignore[assignment]
        """Clear controller state (and optionally retarget)."""
        self._integral = 0.0
        self._last_error = None
        if setpoint is not None:
            self.setpoint = setpoint

    def step(self, measurement: float, dt: float) -> float:
        """Advance the controller one sample period; returns the control output."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt!r}")
        error = self.setpoint - measurement
        derivative = 0.0 if self._last_error is None else (error - self._last_error) / dt
        self._last_error = error

        candidate_integral = self._integral + error * dt
        low, high = self.output_limits
        unclamped = self.kp * error + self.ki * candidate_integral + self.kd * derivative
        if low <= unclamped <= high:
            # Only integrate while inside the actuator's range (anti-windup).
            self._integral = candidate_integral
            return unclamped
        output = self.kp * error + self.ki * self._integral + self.kd * derivative
        return min(max(output, low), high)
