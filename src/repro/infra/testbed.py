"""The full testing infrastructure: chamber + chips + shared clock.

Equivalent of the paper's Section 4 setup: a thermally controlled chamber
hosting many chips, all driven from one simulated clock.  Temperature
changes go through the chamber's PID settle (costing simulated time and
leaving sub-0.25 degC residual error), and each chip sees the chamber
temperature plus a small fixed placement offset -- the physical noise
sources behind the paper's footnote about imperfect contours.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .. import rng as rng_mod
from ..clock import SimClock
from ..conditions import Conditions
from ..dram.chip import DEFAULT_GEOMETRY, SimulatedDRAMChip
from ..dram.geometry import ChipGeometry
from ..dram.vendor import VENDORS, VendorModel
from ..errors import ConfigurationError
from .chamber import ThermalChamber


class TestBed:
    """A chamber full of chips, operated as one instrument."""

    def __init__(
        self,
        chamber: Optional[ThermalChamber] = None,
        clock: Optional[SimClock] = None,
        seed: int = rng_mod.DEFAULT_SEED,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.chamber = chamber if chamber is not None else ThermalChamber(clock=self.clock, seed=seed)
        if self.chamber.clock is not self.clock:
            raise ConfigurationError("chamber and testbed must share one clock")
        self.chips: List[SimulatedDRAMChip] = []
        self._placement_rng = rng_mod.derive(seed, "placement")
        self._placement_offsets: List[float] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        chips_per_vendor: int = 2,
        vendors: Optional[Sequence[VendorModel]] = None,
        geometry: ChipGeometry = DEFAULT_GEOMETRY,
        seed: int = rng_mod.DEFAULT_SEED,
        max_trefi_s: float = 2.6,
        max_temperature_c: float = 60.0,
        fast_path: Optional[bool] = None,
    ) -> "TestBed":
        """Populate a testbed with chips from each vendor.

        ``max_temperature_c`` defaults above the chamber range (40-55 degC)
        so chips never reject a temperature the chamber can legally reach.
        ``fast_path`` selects the chips' failure-evaluation mode
        (byte-identical either way; ``None`` = process default).
        """
        bed = cls(seed=seed)
        chosen = list(vendors) if vendors is not None else list(VENDORS.values())
        chip_id = 0
        for vendor in chosen:
            for _ in range(chips_per_vendor):
                bed.add_chip(
                    SimulatedDRAMChip(
                        vendor=vendor,
                        geometry=geometry,
                        seed=seed,
                        chip_id=chip_id,
                        clock=bed.clock,
                        max_trefi_s=max_trefi_s,
                        max_temperature_c=max_temperature_c,
                        fast_path=fast_path,
                    )
                )
                chip_id += 1
        return bed

    @classmethod
    def build_single(
        cls,
        chip_id: int,
        vendor: VendorModel,
        geometry: ChipGeometry = DEFAULT_GEOMETRY,
        seed: int = rng_mod.DEFAULT_SEED,
        max_trefi_s: float = 2.6,
        max_temperature_c: float = 60.0,
        fast_path: Optional[bool] = None,
        sample=None,
    ) -> "TestBed":
        """Build a one-chip testbed for the chip with global id ``chip_id``.

        The chip is identical to the one a full :meth:`build` would create
        under the same (seed, chip_id), and its placement offset comes from
        :meth:`placement_offset`, so the construction is independent of any
        other chip -- the basis for decomposing a campaign into per-chip
        work units that can run anywhere, in any order.

        ``sample`` optionally supplies the chip's prebuilt weak-cell
        population (e.g. shared-memory views); it must be exactly what
        :func:`repro.dram.chip.sample_weak_cells` returns for this chip.
        """
        bed = cls(seed=seed)
        bed.add_chip(
            SimulatedDRAMChip(
                vendor=vendor,
                geometry=geometry,
                seed=seed,
                chip_id=chip_id,
                clock=bed.clock,
                max_trefi_s=max_trefi_s,
                max_temperature_c=max_temperature_c,
                fast_path=fast_path,
                sample=sample,
            ),
            placement_offset=cls.placement_offset(seed, chip_id),
        )
        return bed

    @staticmethod
    def placement_offset(seed: int, chip_id: int) -> float:
        """Deterministic airflow-placement offset for one chip.

        Keyed by (seed, chip_id) so it does not depend on the order chips
        were racked -- unlike the legacy sequential draw in
        :meth:`add_chip`, which remains for full-bed construction.
        """
        return float(rng_mod.derive(seed, "placement", chip_id).normal(0.0, 0.1))

    def add_chip(
        self, chip: SimulatedDRAMChip, placement_offset: Optional[float] = None
    ) -> None:
        if chip.clock is not self.clock:
            raise ConfigurationError("chip must share the testbed clock")
        self.chips.append(chip)
        # Fixed per-chip placement offset: chips sit at slightly different
        # spots in the airflow.
        if placement_offset is None:
            placement_offset = float(self._placement_rng.normal(0.0, 0.1))
        self._placement_offsets.append(placement_offset)

    def chips_by_vendor(self) -> Dict[str, List[SimulatedDRAMChip]]:
        grouped: Dict[str, List[SimulatedDRAMChip]] = {}
        for chip in self.chips:
            grouped.setdefault(chip.vendor.name, []).append(chip)
        return grouped

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def set_ambient(self, ambient_c: float, settle: bool = True) -> float:
        """Retarget the chamber and propagate the settled temperature to chips.

        Returns the seconds spent settling.  With ``settle=False`` the
        setpoint changes but chips immediately see the (unsettled) chamber
        temperature -- useful for tests exercising the transient.
        """
        self.chamber.set_target(ambient_c)
        elapsed = self.chamber.settle() if settle else 0.0
        for chip, offset in zip(self.chips, self._placement_offsets):
            chip.sync()
            chip.set_temperature(self.chamber.ambient_c + offset)
        return elapsed

    def profile_all(self, profiler, conditions: Conditions) -> Dict[int, object]:
        """Run one profiler across every chip; keyed by chip_id.

        ``profiler`` is anything with ``run(device, conditions)`` --
        brute-force, reach, or scrubbing.
        """
        results: Dict[int, object] = {}
        for chip in self.chips:
            results[chip.chip_id] = profiler.run(chip, conditions)
        return results


class FleetBed:
    """A batch of single-chip testbeds operated in lock-step.

    The fleet measurement worker needs B chips whose *construction* and
    *environment* are byte-identical to what B independent per-chip
    :meth:`TestBed.build_single` workers would have produced -- same weak
    tails, same placement offsets, same chamber trajectories.  So a
    FleetBed simply holds B single-chip beds (one chamber and clock each,
    all seeded identically) and exploits a structural fact for speed:
    chambers constructed from the same seed replay *identical* PID/noise
    trajectories, so one settle on the lead bed yields exactly the elapsed
    time and settled ambient every member bed's own settle would have
    produced.  :meth:`set_ambient` therefore settles the lead chamber once
    and replays the result onto the other members (clock advance, VRT
    sync, per-chip placement-offset temperature) -- byte-identical to
    settling each bed, at ~1/B the cost.
    """

    def __init__(self, beds: Sequence[TestBed]) -> None:
        members = tuple(beds)
        if not members:
            raise ConfigurationError("a fleet bed needs at least one member bed")
        for bed in members:
            if len(bed.chips) != 1:
                raise ConfigurationError(
                    "fleet beds are built from single-chip testbeds; got a "
                    f"bed with {len(bed.chips)} chips"
                )
        self.beds = members

    @classmethod
    def build(
        cls,
        members: Sequence[tuple],
        geometry: ChipGeometry = DEFAULT_GEOMETRY,
        seed: int = rng_mod.DEFAULT_SEED,
        max_trefi_s: float = 2.6,
        max_temperature_c: float = 60.0,
        fast_path: Optional[bool] = None,
        samples: Optional[Dict[int, object]] = None,
    ) -> "FleetBed":
        """Build one single-chip bed per ``(chip_id, vendor)`` member.

        Each member bed comes from :meth:`TestBed.build_single` with the
        shared ``seed``, so every chip -- population, VRT, placement offset
        -- is the exact chip an independent per-chip worker would build.

        ``samples`` optionally maps chip ids to prebuilt weak-cell samples
        (shared-memory views); missing chips fall back to drawing their own.
        """
        return cls(
            [
                TestBed.build_single(
                    chip_id=chip_id,
                    vendor=vendor,
                    geometry=geometry,
                    seed=seed,
                    max_trefi_s=max_trefi_s,
                    max_temperature_c=max_temperature_c,
                    fast_path=fast_path,
                    sample=None if samples is None else samples.get(chip_id),
                )
                for chip_id, vendor in members
            ]
        )

    @property
    def chips(self) -> List[SimulatedDRAMChip]:
        return [bed.chips[0] for bed in self.beds]

    def set_ambient(self, ambient_c: float, settle: bool = True) -> float:
        """Retarget every member chamber; settle once, replay everywhere.

        Returns the seconds spent settling (identical for every member by
        the same-seed replay argument; the lead bed's settle is the one
        actually computed).
        """
        lead = self.beds[0]
        elapsed = lead.set_ambient(ambient_c, settle=settle)
        ambient = lead.chamber.ambient_c
        for bed in self.beds[1:]:
            bed.chamber.set_target(ambient_c)
            bed.clock.advance(elapsed)
            chip = bed.chips[0]
            chip.sync()
            chip.set_temperature(ambient + bed._placement_offsets[0])
        return elapsed
