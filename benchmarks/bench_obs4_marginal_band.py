"""Observation 4: cells cannot be classified "weak" or "strong" -- and
reach conditions convert the marginal band into reliable failures.

The paper's Section 5.5 contribution: at any target interval a substantial
band of cells fails only probabilistically (the reason brute force needs
many iterations), and profiling at a longer interval pushes those same
cells to near-certain failure (the theoretical basis of reach profiling).
"""

from repro.analysis.characterization import classification_band, marginal_band_conversion
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
INTERVALS = (0.512, 1.024, 1.536, 2.048)
SEED = 909


def run_analysis():
    chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, max_trefi_s=2.6)
    bands = [
        classification_band(chip, Conditions(trefi=t, temperature=45.0))
        for t in INTERVALS
    ]
    conversions = {
        t: {
            "discoverable": marginal_band_conversion(
                chip, Conditions(trefi=t, temperature=45.0), converted_at=0.5
            ),
            "reliable": marginal_band_conversion(
                chip, Conditions(trefi=t, temperature=45.0), converted_at=0.95
            ),
        }
        for t in (0.512, 1.024, 1.536)
    }
    return bands, conversions


def test_obs4_marginal_band(benchmark):
    bands, conversions = run_once(benchmark, run_analysis)

    table = ascii_table(
        ["tREFI (ms)", "reliable weak", "marginal", "marginal share of failing"],
        [
            [b.conditions.trefi_ms, b.reliable_weak, b.marginal,
             f"{b.marginal_fraction_of_failing:.1%}"]
            for b in bands
        ],
        title="Observation 4: the probabilistic failure band (1 Gbit chip, 45 degC)",
    )
    comparisons = [
        paper_vs_measured(
            "cells classifiable as weak/strong?",
            "no -- substantial probabilistic band (Section 5.5)",
            f"marginal band is {bands[1].marginal_fraction_of_failing:.0%} of failing cells at 1024 ms",
        ),
        paper_vs_measured(
            "marginal cells findable at +250 ms reach (p >= 0.5 per read)",
            "overwhelming majority (Corollary 4)",
            " / ".join(
                f"{t * 1e3:.0f}ms: {c['discoverable']:.0%}" for t, c in conversions.items()
            ),
        ),
        paper_vs_measured(
            "marginal cells made near-certain (p >= 0.95 per read)",
            "most (Figure 6's sub-200ms sigmas)",
            " / ".join(
                f"{t * 1e3:.0f}ms: {c['reliable']:.0%}" for t, c in conversions.items()
            ),
        ),
    ]
    save_report("obs4_marginal_band", table + "\n" + "\n".join(comparisons))

    # The marginal band is substantial at every interval -- no clean split.
    for band in bands:
        assert band.marginal > 0
        assert band.marginal_fraction_of_failing > 0.15
    # The +250 ms reach makes essentially every marginal cell findable
    # within a few passes, and most of them near-certain per read.
    for conversion in conversions.values():
        assert conversion["discoverable"] > 0.90
        assert conversion["reliable"] > 0.55