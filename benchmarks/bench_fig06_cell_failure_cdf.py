"""Figure 6: per-cell normal failure CDFs (a) and the lognormal
distribution of their standard deviations (b)."""

import numpy as np

from repro.analysis.characterization import fig6_cell_failure_cdfs
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)


def test_fig06(benchmark):
    result = run_once(
        benchmark,
        lambda: fig6_cell_failure_cdfs(
            geometry=GEOMETRY,
            reads_per_interval=16,
            # A dense linear grid resolves small-sigma cells' narrow
            # transitions (3+ informative points each); a coarse grid would
            # bias the fitted sample towards large sigmas.
            intervals_s=tuple(np.linspace(0.2, 2.4, 56)),
            temperature_c=40.0,
        ),
    )

    sigma_ms = result.sigmas_s * 1e3
    histogram, edges = np.histogram(np.log10(sigma_ms), bins=10)
    table = ascii_table(
        ["log10(sigma/ms) bin", "cells"],
        [[f"{lo:.2f}..{hi:.2f}", int(count)] for lo, hi, count in zip(edges, edges[1:], histogram)],
        title=f"Figure 6b: per-cell sigma histogram ({result.cells_fitted} fitted cells, "
        f"{result.cells_excluded_vrt} VRT cells excluded)",
    )
    comparisons = [
        paper_vs_measured(
            "per-cell failure CDF", "normal in tREFI", "probit fits succeed (see counts)"
        ),
        paper_vs_measured(
            "sigma distribution", "lognormal, majority < 200 ms",
            f"lognormal median {result.sigma_fit.median * 1e3:.0f} ms, "
            f"{result.fraction_sigma_below_200ms:.0%} below 200 ms",
        ),
    ]
    save_report("fig06", table + "\n" + "\n".join(comparisons))

    assert result.cells_fitted > 50
    # Figure 6b: the majority of cells have sigma below 200 ms at 40 degC.
    assert result.fraction_sigma_below_200ms > 0.5
    # The sigma sample is consistent with a lognormal (KS distance small).
    assert result.sigma_fit is not None
    assert result.sigma_fit.ks_distance(result.sigmas_s) < 0.15
