"""Shared helpers for benchmark scripts: host stamping and CPU counts.

Benchmark JSONs are committed artifacts, so every emitted result must say
*where* it was measured: worker count, usable CPU cores, interpreter and
numpy versions, and a short host fingerprint.  Without the stamp, a
number measured on a 1-core container and one from an 8-core CI runner
look interchangeable -- and scaling gates would misfire on both.
"""

from __future__ import annotations

import hashlib
import os
import platform
import sys
from typing import Any, Dict, Optional

import numpy as np


def cpu_count() -> int:
    """Usable CPU cores: the scheduler affinity mask when available
    (containers and CI runners routinely restrict it below the host's
    ``os.cpu_count``), else the host count."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def host_stamp(workers: Optional[int] = None) -> Dict[str, Any]:
    """A JSON-ready description of the measuring host.

    ``fingerprint`` is a stable short hash of the platform identity
    (machine, OS, Python, numpy) -- enough to tell two hosts' committed
    results apart without recording anything identifying.
    """
    identity = "|".join(
        (
            platform.system(),
            platform.release(),
            platform.machine(),
            platform.python_version(),
            np.__version__,
        )
    )
    stamp: Dict[str, Any] = {
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": cpu_count(),
        "fingerprint": hashlib.blake2b(
            identity.encode("utf-8"), digest_size=6
        ).hexdigest(),
    }
    if workers is not None:
        stamp["workers"] = int(workers)
    return stamp


if __name__ == "__main__":  # pragma: no cover - debugging aid
    import json

    print(json.dumps(host_stamp(), indent=2))
    sys.exit(0)
