"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark runs its experiment exactly once (``benchmark.pedantic``
with one round -- these are reproduction harnesses, not micro-benchmarks),
prints a paper-vs-measured report, and saves it under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def save_report(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print()
    print(text)
