"""Figure 13: end-to-end system performance improvement (top) and DRAM
power reduction (bottom) over 20 heterogeneous 4-core mixes, for brute-force
profiling, REAPER, and ideal (zero-cost) profiling -- plus the Section 7.3.2
ArchShield combination."""

import numpy as np

from repro.analysis.experiments import archshield_combination, fig13_end_to_end
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.sysperf.overhead import ProfilerKind

from conftest import run_once, save_report

TREFIS = (0.128, 0.256, 0.512, 1.024, 1.280, 1.536, None)


def label(trefi):
    return "no ref" if trefi is None else f"{trefi * 1e3:.0f}ms"


def test_fig13(benchmark):
    def experiment():
        summaries = fig13_end_to_end(trefis_s=TREFIS, chip_density_gigabits=64, n_mixes=20)
        archshield = archshield_combination(trefi_s=1.024, chip_density_gigabits=64, n_mixes=20)
        return summaries, archshield

    summaries, archshield = run_once(benchmark, experiment)

    rows = []
    for trefi in TREFIS:
        for kind in ProfilerKind:
            summary = next(
                s for s in summaries if s.trefi_s == trefi and s.profiler is kind
            )
            rows.append(
                [
                    label(trefi),
                    kind.value,
                    f"{summary.mean_improvement:+.1%}",
                    f"{summary.max_improvement:+.1%}",
                    f"{summary.mean_power_reduction:.1%}",
                ]
            )
    table = ascii_table(
        ["tREFI", "profiler", "perf mean", "perf max", "power reduction"],
        rows,
        title="Figure 13: end-to-end performance / power, 32x 64Gb chips, 45 degC",
    )

    def get(trefi, kind):
        return next(s for s in summaries if s.trefi_s == trefi and s.profiler is kind)

    ideal_512 = get(0.512, ProfilerKind.IDEAL)
    noref = get(None, ProfilerKind.IDEAL)
    reaper_1024 = get(1.024, ProfilerKind.REAPER)
    brute_1280 = get(1.280, ProfilerKind.BRUTE_FORCE)
    reaper_1280 = get(1.280, ProfilerKind.REAPER)
    comparisons = [
        paper_vs_measured("512ms ideal perf (mean/max)", "+16.3% / +27.0%",
                          f"{ideal_512.mean_improvement:+.1%} / {ideal_512.max_improvement:+.1%}"),
        paper_vs_measured("512ms power reduction (mean)", "36.4%",
                          f"{get(0.512, ProfilerKind.REAPER).mean_power_reduction:.1%}"),
        paper_vs_measured("no-refresh ideal perf (mean/max)", "+18.8% / +31.2%",
                          f"{noref.mean_improvement:+.1%} / {noref.max_improvement:+.1%}"),
        paper_vs_measured("no-refresh power reduction (mean)", "41.3%",
                          f"{noref.mean_power_reduction:.1%}"),
        paper_vs_measured("1024ms REAPER perf (mean)", "+13.5%",
                          f"{reaper_1024.mean_improvement:+.1%}"),
        paper_vs_measured("1280ms brute vs REAPER", "-5.4% vs +8.6%",
                          f"{brute_1280.mean_improvement:+.1%} vs {reaper_1280.mean_improvement:+.1%}"),
        paper_vs_measured(
            "ArchShield @1024ms (ideal/REAPER/brute)",
            "+15.7% / +12.5% / +6.5%",
            " / ".join(f"{archshield[k][0]:+.1%}" for k in ("ideal", "reaper", "brute-force")),
        ),
    ]
    save_report("fig13", table + "\n" + "\n".join(comparisons))

    # --- Shape assertions -------------------------------------------------
    # Below 512 ms all three profilers are indistinguishable.
    for trefi in (0.128, 0.256):
        values = [get(trefi, k).mean_improvement for k in ProfilerKind]
        assert max(values) - min(values) < 0.005
    # Ideal gains keep growing with the interval; profiled gains peak then fall.
    assert noref.mean_improvement > ideal_512.mean_improvement > 0.10
    # Ordering at long intervals: ideal > REAPER > brute force.
    for trefi in (1.024, 1.280, 1.536):
        ideal = get(trefi, ProfilerKind.IDEAL).mean_improvement
        reaper = get(trefi, ProfilerKind.REAPER).mean_improvement
        brute = get(trefi, ProfilerKind.BRUTE_FORCE).mean_improvement
        assert ideal > reaper > brute
    # Brute force turns refresh relaxation into a net loss at 1536 ms while
    # REAPER remains far ahead (the "previously unreasonable" regime).
    assert get(1.536, ProfilerKind.BRUTE_FORCE).mean_improvement < 0.0
    assert (
        get(1.536, ProfilerKind.REAPER).mean_improvement
        > get(1.536, ProfilerKind.BRUTE_FORCE).mean_improvement + 0.10
    )
    # Power reductions are large and peak around the long intervals.
    assert 0.25 < get(0.512, ProfilerKind.REAPER).mean_power_reduction < 0.55
    # ArchShield combination preserves the ordering of Section 7.3.2.
    assert archshield["ideal"][0] > archshield["reaper"][0] > archshield["brute-force"][0]
