"""The paper's headline result (Section 6.1.2 / abstract): profiling at
+250 ms above the target attains >99% coverage at <50% false positives
while running ~2.5x faster than brute force -- measured across a simulated
multi-vendor chip population."""

from repro.analysis.experiments import headline_reach_metrics
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)


def test_headline(benchmark):
    result = run_once(
        benchmark,
        lambda: headline_reach_metrics(geometry=GEOMETRY, chips_per_vendor=3),
    )

    table = ascii_table(
        ["vendor", "chip", "coverage", "FPR", "speedup"],
        [
            [r.vendor, r.chip_id, f"{r.coverage:.4f}", f"{r.false_positive_rate:.3f}", f"{r.speedup:.2f}x"]
            for r in result.per_chip
        ],
        title="Headline: reach profiling at +250 ms vs 16-iteration brute force",
    )
    comparisons = [
        paper_vs_measured("mean coverage", ">99%", f"{result.mean_coverage:.2%}"),
        paper_vs_measured("mean false positive rate", "<50%", f"{result.mean_false_positive_rate:.1%}"),
        paper_vs_measured("mean runtime speedup", "2.5x", f"{result.mean_speedup:.2f}x"),
    ]
    save_report("headline", table + "\n" + "\n".join(comparisons))

    assert result.mean_coverage > 0.99
    assert result.mean_false_positive_rate < 0.50
    assert 2.2 < result.mean_speedup < 2.9
