"""Figure 4: steady-state failure accumulation rates vs refresh interval,
with per-vendor power-law fits ``A(t) = a * t^b``."""

from repro.analysis.characterization import fig4_accumulation_rates
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(4.0)
INTERVALS = (1.4, 1.85, 2.3)


def test_fig04(benchmark):
    result = run_once(
        benchmark,
        lambda: fig4_accumulation_rates(
            intervals_s=INTERVALS,
            hours_per_interval=24.0,
            geometry=GEOMETRY,
        ),
    )

    table = ascii_table(
        ["vendor", "tREFI (s)", "measured A (cells/h)", "model A (cells/h)"],
        [
            [r.vendor, r.trefi_s, r.measured_rate_per_hour, r.analytic_rate_per_hour]
            for r in result.rows
        ],
        title="Figure 4: steady-state accumulation rates (4 Gbit chips, 45 degC)",
    )
    fit_lines = [
        paper_vs_measured(
            f"power-law fit vendor {vendor}",
            "y = a*x^b (well-fitting)",
            str(fit),
        )
        for vendor, fit in sorted(result.fits.items())
    ]
    save_report("fig04", table + "\n" + "\n".join(fit_lines))

    # Rates grow with the refresh interval for every vendor.
    for vendor in "ABC":
        series = [r.measured_rate_per_hour for r in result.rows if r.vendor == vendor]
        assert series[-1] > series[0]
    # Power-law fits exist and are steep (polynomial growth, Figure 4).
    for vendor, fit in result.fits.items():
        assert fit.b > 2.0, f"vendor {vendor} fit too shallow: {fit}"
        assert fit.r_squared > 0.7
