"""Ablation: how much does the data-pattern set matter? (Corollary 3)

Profiles the same chip with growing pattern subsets -- a single solid
pattern, one pattern + inverse, the six base patterns, and the full
six-plus-inverses standard set -- and measures coverage of the full-set
truth.  Demonstrates why robust profiling must test multiple patterns.
"""

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions
from repro.core import BruteForceProfiler, coverage
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.patterns import (
    BASE_PATTERNS,
    CHECKERBOARD,
    RANDOM,
    SOLID_ZERO,
    STANDARD_PATTERNS,
)

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
TARGET = Conditions(trefi=2.048, temperature=45.0)
SEED = 77

SUBSETS = (
    ("solid only", (SOLID_ZERO,)),
    ("solid + inverse", (SOLID_ZERO, SOLID_ZERO.inverse)),
    ("checkerboard pair", (CHECKERBOARD, CHECKERBOARD.inverse)),
    ("random pair", (RANDOM, RANDOM.inverse)),
    ("6 base patterns", BASE_PATTERNS),
    ("full standard set", STANDARD_PATTERNS),
)


def run_ablation():
    truth = BruteForceProfiler(patterns=STANDARD_PATTERNS, iterations=16).run(
        SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, max_trefi_s=2.2), TARGET
    )
    rows = []
    for label, patterns in SUBSETS:
        profile = BruteForceProfiler(patterns=patterns, iterations=16).run(
            SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, max_trefi_s=2.2), TARGET
        )
        rows.append(
            {
                "label": label,
                "n_passes": len(patterns),
                "coverage": coverage(profile.failing, truth.failing),
                "found": len(profile),
            }
        )
    return rows


def test_ablation_patterns(benchmark):
    rows = run_once(benchmark, run_ablation)

    table = ascii_table(
        ["pattern set", "passes/iter", "found", "coverage of full-set truth"],
        [[r["label"], r["n_passes"], r["found"], f"{r['coverage']:.3f}"] for r in rows],
        title="Ablation: data-pattern subsets (16 iterations at 2048 ms)",
    )
    by_label = {r["label"]: r for r in rows}
    comparisons = [
        paper_vs_measured(
            "single pattern vs full set",
            "single patterns insufficient (Cor. 3)",
            f"solid-only covers {by_label['solid only']['coverage']:.1%}",
        ),
        paper_vs_measured(
            "random vs structured pairs",
            "random discovers most (Obs 3)",
            f"random pair {by_label['random pair']['coverage']:.1%} vs "
            f"checkerboard pair {by_label['checkerboard pair']['coverage']:.1%}",
        ),
    ]
    save_report("ablation_patterns", table + "\n" + "\n".join(comparisons))

    # Single-pattern profiling leaves a visible coverage gap.
    assert by_label["solid only"]["coverage"] < 0.95
    # Adding the inverse strictly helps.
    assert by_label["solid + inverse"]["coverage"] > by_label["solid only"]["coverage"]
    # The random pair beats any single structured pair (Observation 3).
    assert by_label["random pair"]["coverage"] > by_label["checkerboard pair"]["coverage"]
    # The full set is the reference.
    assert by_label["full standard set"]["coverage"] == 1.0
