"""Figure 10: profiling runtime (normalized to brute force) over the reach
condition space, at fixed >=90% coverage."""

import numpy as np

from repro.analysis.experiments import fig9_fig10_tradeoff_surface
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions, ReachDelta
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
DELTA_TREFIS = (0.0, 0.125, 0.250, 0.375, 0.500)
DELTA_TEMPS = (0.0, 5.0, 10.0)


def test_fig10(benchmark):
    surface = run_once(
        benchmark,
        lambda: fig9_fig10_tradeoff_surface(
            base=Conditions(trefi=1.024, temperature=45.0),
            delta_trefis_s=DELTA_TREFIS,
            delta_temperatures_c=DELTA_TEMPS,
            geometry=GEOMETRY,
            iterations=16,
            # The paper's Figure 10 fixes a coverage requirement and reports
            # the runtime to reach it; our per-iteration coverage ramps
            # faster than real chips', so the equivalent operating point is
            # a high coverage target.
            coverage_target=0.99,
        ),
    )

    grid = surface.grid("runtime")
    table = ascii_table(
        ["dT \\ dtREFI"] + [f"+{d * 1e3:.0f}ms" for d in DELTA_TREFIS],
        [
            [f"+{temp:.0f}degC"] + [f"{grid[i, j]:.3f}" for j in range(len(DELTA_TREFIS))]
            for i, temp in enumerate(DELTA_TEMPS)
        ],
        title="Figure 10: runtime to 99% coverage, normalized to brute force",
    )
    at_250 = surface.cell(ReachDelta(delta_trefi=0.250))
    best = surface.best_reach(min_coverage=0.99, max_fpr=1.0)
    # The paper's 2.5x operating point corresponds to REAPER's fixed
    # configuration: 16 brute-force iterations vs 5 reach iterations (see
    # bench_headline_speedup).  At matched *measured* coverage our simulated
    # reach converges in fewer iterations than real chips (milder DPD), so
    # this matched-coverage accounting reports a larger speedup; both views
    # are shown.
    comparisons = [
        paper_vs_measured(
            "speedup at +250ms (matched coverage)", ">=2.5x",
            f"{1.0 / at_250.runtime_norm_mean:.2f}x",
        ),
        paper_vs_measured(
            "speedup at +250ms (REAPER's 16-vs-5 config)", "2.5x",
            "2.5x-2.6x (see headline bench)",
        ),
        paper_vs_measured(
            "max speedup at aggressive reach", ">3.5x (at >75% FPR)",
            f"{1.0 / best.runtime_norm_mean:.2f}x at {best.fpr_mean:.0%} FPR"
            if best else "n/a",
        ),
    ]
    save_report("fig10", table + "\n" + "\n".join(comparisons))

    # Runtime at the origin is the brute-force reference.
    assert grid[0, 0] == 1.0
    # Everything strictly inside the reach space is faster than brute force.
    assert np.all(grid[:, 1:] < 1.0)
    # Reach delivers at least the paper's speedup at +250 ms.
    speedup = 1.0 / at_250.runtime_norm_mean
    assert speedup >= 2.5
    # Aggressive corners push beyond 3x.
    corner = surface.cell(ReachDelta(delta_trefi=0.5, delta_temperature=10.0))
    assert 1.0 / corner.runtime_norm_mean > 3.0
    # Runtime falls monotonically (within noise) along the interval axis.
    assert np.all(np.diff(grid, axis=1) <= 0.10)
