"""The cost of false positives across mitigation mechanisms (Section 6.1.2).

"The exact choice of reach conditions depends on the overall system design"
-- specifically on how expensive false positives are for the mitigation
mechanism in use.  This bench profiles one chip at increasingly aggressive
reach deltas and feeds the result to each mechanism, measuring the capacity
each one burns: row map-out pays whole rows per false positive, SECRET pays
a spare cell, ArchShield pays a FaultMap entry per word.
"""

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions, ReachDelta
from repro.core import BruteForceProfiler, ReachProfiler, evaluate
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.mitigation import ArchShield, RowMapOut, SECRET

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
TARGET = Conditions(trefi=1.024, temperature=45.0)
DELTAS = (0.125, 0.250, 0.500)
SEED = 88


def run_sweep():
    truth = BruteForceProfiler(iterations=16).run(
        SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, max_trefi_s=2.6), TARGET
    )
    rows = []
    for delta in DELTAS:
        chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, max_trefi_s=2.6)
        profile = ReachProfiler(reach=ReachDelta(delta_trefi=delta), iterations=5).run(
            chip, TARGET
        )
        score = evaluate(profile, truth.failing)
        shield = ArchShield(capacity_bits=chip.capacity_bits)
        secret = SECRET(spare_cells=len(profile) * 2 + 64)
        mapout = RowMapOut(
            total_rows=chip.geometry.total_rows,
            bits_per_row=chip.geometry.bits_per_row,
            max_mapped_fraction=1.0,
        )
        for mechanism in (shield, secret, mapout):
            mechanism.ingest(profile.failing)
        rows.append(
            {
                "delta": delta,
                "fpr": score.false_positive_rate,
                "cells": len(profile),
                "faultmap_entries": shield.entry_count,
                "spares_used": secret.spares_used,
                "rows_lost": mapout.mapped_row_count,
                "capacity_lost": mapout.capacity_loss_fraction,
            }
        )
    return rows


def test_mitigation_fp_cost(benchmark):
    rows = run_once(benchmark, run_sweep)

    table = ascii_table(
        ["reach", "FPR", "cells", "ArchShield entries", "SECRET spares", "rows mapped out"],
        [
            [f"+{r['delta'] * 1e3:.0f}ms", f"{r['fpr']:.2f}", r["cells"],
             r["faultmap_entries"], r["spares_used"], r["rows_lost"]]
            for r in rows
        ],
        title="False-positive cost per mitigation mechanism (1 Gbit chip, 1024 ms target)",
    )
    comparisons = [
        paper_vs_measured(
            "FP cost depends on the mechanism",
            "drives the reach choice (Section 6.1.2)",
            f"at +500ms: {rows[-1]['rows_lost']} rows lost vs "
            f"{rows[-1]['spares_used']} spare cells",
        ),
    ]
    save_report("mitigation_fp_cost", table + "\n" + "\n".join(comparisons))

    # More aggressive reach -> more false positives -> more capacity burned,
    # in every mechanism.
    for key in ("fpr", "cells", "faultmap_entries", "spares_used", "rows_lost"):
        series = [r[key] for r in rows]
        assert series == sorted(series), key
    # Cell-granularity mechanisms absorb false positives much more cheaply
    # than row map-out burns address space.
    worst = rows[-1]
    assert worst["capacity_lost"] < 0.01  # even map-out survives on a 1 Gb chip
    assert worst["rows_lost"] <= worst["cells"]
