"""Figure 5: per-data-pattern coverage of unique retention failures
(Observation 3: random wins for LPDDR4 but never reaches 100%)."""

from repro.analysis.characterization import fig5_dpd_coverage
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)


def test_fig05(benchmark):
    result = run_once(
        benchmark,
        lambda: fig5_dpd_coverage(trefi_s=2.048, iterations=160, geometry=GEOMETRY),
    )

    rows = []
    for key in result.pattern_keys:
        series = result.coverage_by_pattern[key]
        quarter = len(series) // 4
        rows.append([key, series[quarter], series[2 * quarter], series[-1]])
    table = ascii_table(
        ["pattern", "cov @25%", "cov @50%", "final coverage"],
        rows,
        title=f"Figure 5: per-pattern coverage over {result.iterations} iterations "
        f"({result.total_failures} total failures)",
    )
    best = result.best_pattern()
    comparisons = [
        paper_vs_measured("best single pattern", "random", best),
        paper_vs_measured(
            "best pattern final coverage", "<100%", f"{result.final_coverage(best):.1%}"
        ),
    ]
    save_report("fig05", table + "\n" + "\n".join(comparisons))

    # Observation 3: a random pattern discovers the most failures...
    assert best.startswith("random")
    # ...but cannot detect every failure on its own.
    assert result.final_coverage(best) < 1.0
    # Every pattern's coverage is monotone nondecreasing over iterations.
    for key in result.pattern_keys:
        series = result.coverage_by_pattern[key]
        assert list(series) == sorted(series)
    # Corollary 3: the union beats any single pattern (all finals < 1).
    assert all(result.final_coverage(k) < 1.0 for k in result.pattern_keys)
