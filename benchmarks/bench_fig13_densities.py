"""Figure 13 across chip densities (8-64 Gb).

The paper's Figure 13 shows its triplets for modules of 8, 16, 32, and
64 Gb chips; the main fig13 bench fixes 64 Gb (the headline case).  This
bench sweeps the density dimension and checks the cross-density structure:
gains grow with density (bigger chips suffer more refresh), and the
REAPER-vs-brute gap widens with density (bigger chips profile slower).
"""

import numpy as np

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.sysperf.overhead import EndToEndEvaluator, ProfilerKind
from repro.sysperf.workloads import workload_mixes

from conftest import run_once, save_report

DENSITIES = (8, 16, 32, 64)
TREFIS = (0.512, 1.280, None)


def run_sweep():
    mixes = workload_mixes(8)
    rows = []
    for density in DENSITIES:
        evaluator = EndToEndEvaluator(chip_density_gigabits=density)
        for trefi in TREFIS:
            means = {}
            for kind in (ProfilerKind.IDEAL, ProfilerKind.REAPER, ProfilerKind.BRUTE_FORCE):
                values = [
                    evaluator.evaluate_mix(mix, trefi, kind).performance_improvement
                    for mix in mixes
                ]
                means[kind] = float(np.mean(values))
            rows.append({"density": density, "trefi": trefi, "means": means})
    return rows


def test_fig13_densities(benchmark):
    rows = run_once(benchmark, run_sweep)

    table = ascii_table(
        ["chip (Gb)", "tREFI", "ideal", "REAPER", "brute-force"],
        [
            [
                r["density"],
                "no ref" if r["trefi"] is None else f"{r['trefi'] * 1e3:.0f}ms",
                f"{r['means'][ProfilerKind.IDEAL]:+.1%}",
                f"{r['means'][ProfilerKind.REAPER]:+.1%}",
                f"{r['means'][ProfilerKind.BRUTE_FORCE]:+.1%}",
            ]
            for r in rows
        ],
        title="Figure 13 across chip densities (8 mixes per point)",
    )
    comparisons = [
        paper_vs_measured(
            "gains grow with chip density",
            "Fig 13's per-size triplets",
            "monotone in density at every interval",
        ),
    ]
    save_report("fig13_densities", table + "\n" + "\n".join(comparisons))

    def mean(density, trefi, kind):
        return next(
            r for r in rows if r["density"] == density and r["trefi"] == trefi
        )["means"][kind]

    # Ideal gains are monotone in density at every interval.
    for trefi in TREFIS:
        series = [mean(d, trefi, ProfilerKind.IDEAL) for d in DENSITIES]
        assert series == sorted(series)
    # The REAPER-vs-brute gap at 1280 ms widens with density (profiling a
    # bigger module costs more, so the cheaper profiler matters more).
    gaps = [
        mean(d, 1.280, ProfilerKind.REAPER) - mean(d, 1.280, ProfilerKind.BRUTE_FORCE)
        for d in DENSITIES
    ]
    assert gaps == sorted(gaps)
    assert gaps[-1] > 0.03
