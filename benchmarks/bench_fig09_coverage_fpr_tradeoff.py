"""Figure 9: coverage (top) and false positive rate (bottom) over the
(delta interval, delta temperature) reach-condition space."""

import numpy as np

from repro.analysis.experiments import fig9_fig10_tradeoff_surface
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions, ReachDelta
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
DELTA_TREFIS = (0.0, 0.125, 0.250, 0.375, 0.500)
DELTA_TEMPS = (0.0, 5.0, 10.0)


def compute_surface():
    return fig9_fig10_tradeoff_surface(
        base=Conditions(trefi=1.024, temperature=45.0),
        delta_trefis_s=DELTA_TREFIS,
        delta_temperatures_c=DELTA_TEMPS,
        geometry=GEOMETRY,
        iterations=16,
    )


def render_grid(surface, metric, title):
    grid = surface.grid(metric)
    return ascii_table(
        ["dT \\ dtREFI"] + [f"+{d * 1e3:.0f}ms" for d in DELTA_TREFIS],
        [
            [f"+{temp:.0f}degC"] + [f"{grid[i, j]:.3f}" for j in range(len(DELTA_TREFIS))]
            for i, temp in enumerate(DELTA_TEMPS)
        ],
        title=title,
    )


def test_fig09(benchmark):
    surface = run_once(benchmark, compute_surface)

    coverage_table = render_grid(surface, "coverage", "Figure 9 (top): coverage")
    fpr_table = render_grid(surface, "fpr", "Figure 9 (bottom): false positive rate")
    headline = surface.cell(ReachDelta(delta_trefi=0.250))
    comparisons = [
        paper_vs_measured(
            "coverage at +250ms", ">99%", f"{headline.coverage_mean:.1%} "
            f"(std {headline.coverage_std:.3f})"
        ),
        paper_vs_measured(
            "false positive rate at +250ms", "<50%", f"{headline.fpr_mean:.1%}"
        ),
        paper_vs_measured(
            "distribution tightness", "std < 10% of range", "see stds in surface"
        ),
    ]
    save_report("fig09", coverage_table + "\n" + fpr_table + "\n" + "\n".join(comparisons))

    coverage = surface.grid("coverage")
    fpr = surface.grid("fpr")
    # Coverage grows along both axes (allowing small sampling noise).
    assert np.all(np.diff(coverage, axis=1) >= -0.02)
    assert np.all(np.diff(coverage, axis=0) >= -0.02)
    # FPR also grows along both axes -- the core tradeoff.
    assert np.all(np.diff(fpr, axis=1) >= -0.05)
    # Headline point: >99% coverage at <50% FPR.
    assert headline.coverage_mean > 0.99
    assert headline.fpr_mean < 0.50
    # Aggressive corner has high FPR (paper: >75-90%).
    corner = surface.cell(ReachDelta(delta_trefi=0.5, delta_temperature=10.0))
    assert corner.fpr_mean > 0.6
