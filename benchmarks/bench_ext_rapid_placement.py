"""Extension: RAPID retention-aware placement fed by reach profiles.

RAPID (Section 3.1) allocates data to the strongest rows first and refreshes
at the rate of the weakest *allocated* row.  Its enabling requirement is
exactly what reach profiling provides cheaply: per-row retention classes.
This bench builds the RAPID retention map from a ladder of reach profiles
and reports the signature curve: refresh interval (and refresh-operation
savings) versus memory utilization.
"""

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions, ReachDelta
from repro.core import ReachProfiler
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.mitigation import RAPID

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
LADDER = (0.512, 1.024, 1.536, 2.048)
SEED = 606


def run_rapid():
    chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, max_trefi_s=2.6)
    rapid = RAPID(
        total_rows=chip.geometry.total_rows,
        bits_per_row=chip.geometry.bits_per_row,
        guardband=0.5,
    )
    # Ladder of reach profiles -> per-row retention classes.
    profiler = ReachProfiler(reach=ReachDelta(delta_trefi=0.25), iterations=2)
    for interval in LADDER:
        profile = profiler.run(chip, Conditions(trefi=interval, temperature=45.0))
        rapid.learn_from_failing_cells(profile.failing, tested_interval_s=interval)
    # Rows that never failed the ladder retain at least the top rung.
    known_weak = set(rapid._retention)
    for row in range(chip.geometry.total_rows):
        if row not in known_weak:
            rapid.learn_survivors([row], survived_interval_s=max(LADDER) * 2)

    curve = []
    step = chip.geometry.total_rows // 5
    for _ in range(5):
        rapid.allocate(step)
        curve.append(
            {
                "utilization": rapid.utilization,
                "interval_s": rapid.required_refresh_interval_s(),
                "savings": rapid.refresh_savings_fraction(),
            }
        )
    return {"weak_rows": len(known_weak), "curve": curve}


def test_rapid_placement(benchmark):
    result = run_once(benchmark, run_rapid)

    table = ascii_table(
        ["utilization", "refresh interval (s)", "refresh savings"],
        [
            [f"{p['utilization']:.0%}", f"{p['interval_s']:.3f}", f"{p['savings']:.1%}"]
            for p in result["curve"]
        ],
        title=f"Extension: RAPID placement curve ({result['weak_rows']} profiled weak rows)",
    )
    comparisons = [
        paper_vs_measured(
            "refresh interval vs utilization",
            "degrades as memory fills (RAPID's model)",
            "monotone non-increasing curve",
        ),
    ]
    save_report("ext_rapid_placement", table + "\n" + "\n".join(comparisons))

    intervals = [p["interval_s"] for p in result["curve"]]
    # The signature: allocation pressure pushes refresh faster, monotonically.
    assert intervals == sorted(intervals, reverse=True)
    # Lightly loaded machines refresh far slower than the JEDEC default.
    assert intervals[0] > 0.512
    # Savings stay strongly positive even fully allocated: the weakest
    # ladder rung (512 ms, derated by the 0.5 guardband to 256 ms) still
    # refreshes 4x slower than the 64 ms default -> exactly 75% savings.
    assert result["curve"][-1]["savings"] >= 0.74
