"""Figure 12: DRAM power consumed by profiling vs online profiling
interval -- demonstrating that profiling power is negligible."""

from repro.analysis.experiments import fig12_profiling_power
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.sysperf.power import PowerModel

from conftest import run_once, save_report

INTERVALS_H = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
DENSITIES = (8, 16, 32, 64)


def test_fig12(benchmark):
    rows = run_once(
        benchmark,
        lambda: fig12_profiling_power(
            intervals_hours=INTERVALS_H, densities_gigabits=DENSITIES
        ),
    )

    table = ascii_table(
        ["interval (h)", "chip (Gb)", "brute (mW)", "REAPER (mW)"],
        [
            [r.profiling_interval_hours, r.chip_density_gigabits,
             f"{r.brute_power_mw:.3f}", f"{r.reaper_power_mw:.3f}"]
            for r in rows
        ],
        title="Figure 12: DRAM power of profiling (32-chip modules)",
    )
    anchor = next(
        r for r in rows if r.profiling_interval_hours == 4.0 and r.chip_density_gigabits == 64
    )
    module_power = PowerModel(density_gigabits=64).total_power_mw(0.512, 0.05) * 32
    comparisons = [
        paper_vs_measured(
            "profiling power vs total DRAM power (4h, 64Gb)",
            "negligible (nanowatt-scale in the paper's normalization)",
            f"{anchor.brute_power_mw:.1f} mW of ~{module_power:.0f} mW module power "
            f"({anchor.brute_power_mw / module_power:.2%})",
        ),
    ]
    save_report("fig12", table + "\n" + "\n".join(comparisons))

    for row in rows:
        assert row.reaper_power_mw < row.brute_power_mw
    # Power scales with chip size and inversely with the profiling interval.
    for hours in INTERVALS_H:
        by_density = [r.brute_power_mw for r in rows if r.profiling_interval_hours == hours]
        assert by_density == sorted(by_density)
    for density in DENSITIES:
        by_interval = [r.brute_power_mw for r in rows if r.chip_density_gigabits == density]
        assert by_interval == sorted(by_interval, reverse=True)
    # The headline conclusion: profiling power is a tiny fraction of total
    # at the paper's 4-hour anchor cadence.
    assert anchor.brute_power_mw / module_power < 0.05
