"""Extension: per-bank refresh (REFpb) composed with refresh relaxation.

The paper's related work (Section 8) notes that scheduling-level refresh
mitigations "can be used together with the more aggressive refresh
reduction techniques that REAPER enables."  This bench quantifies that on
the system model: per-bank refresh softens the default-interval penalty,
refresh relaxation via REAPER removes most of it, and the two compose.
"""

import numpy as np

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.sysperf.dramtiming import DRAMTimings
from repro.sysperf.system import SystemSimulator
from repro.sysperf.workloads import workload_mixes

from conftest import run_once, save_report

CONFIGS = (
    ("REFab @64ms (baseline)", False, 0.064),
    ("REFpb @64ms", True, 0.064),
    ("REFab @512ms (REAPER-enabled)", False, 0.512),
    ("REFpb @512ms (composed)", True, 0.512),
    ("no refresh (upper bound)", False, None),
)


def run_comparison():
    mixes = workload_mixes(10)
    baseline = SystemSimulator(timings=DRAMTimings(density_gigabits=64))
    # Compare raw mix throughput (sum of IPCs): the weighted-speedup
    # denominator depends on the timing configuration and would not be
    # comparable across REFab/REFpb systems.
    base_throughput = [sum(baseline.simulate_mix(mix, 0.064).ipcs) for mix in mixes]
    rows = []
    for label, per_bank, trefi in CONFIGS:
        system = SystemSimulator(
            timings=DRAMTimings(density_gigabits=64, per_bank_refresh=per_bank)
        )
        gains = [
            sum(system.simulate_mix(mix, trefi).ipcs) / base - 1.0
            for mix, base in zip(mixes, base_throughput)
        ]
        rows.append({"label": label, "mean": float(np.mean(gains)), "max": float(np.max(gains))})
    return rows


def test_per_bank_refresh_composition(benchmark):
    rows = run_once(benchmark, run_comparison)

    table = ascii_table(
        ["configuration", "perf vs REFab@64ms (mean)", "(max)"],
        [[r["label"], f"{r['mean']:+.1%}", f"{r['max']:+.1%}"] for r in rows],
        title="Extension: per-bank refresh x refresh relaxation (32x 64Gb, 10 mixes)",
    )
    by_label = {r["label"]: r["mean"] for r in rows}
    comparisons = [
        paper_vs_measured(
            "scheduling mitigations compose with REAPER",
            "stated in Section 8",
            f"REFpb alone {by_label['REFpb @64ms']:+.1%}, relaxation alone "
            f"{by_label['REFab @512ms (REAPER-enabled)']:+.1%}, composed "
            f"{by_label['REFpb @512ms (composed)']:+.1%}",
        ),
    ]
    save_report("ext_per_bank_refresh", table + "\n" + "\n".join(comparisons))

    # Per-bank refresh alone recovers part of the refresh penalty.
    assert 0.0 < by_label["REFpb @64ms"] < by_label["no refresh (upper bound)"]
    # Relaxation recovers more than REFpb alone for big chips.
    assert by_label["REFab @512ms (REAPER-enabled)"] > by_label["REFpb @64ms"]
    # The composition beats either alone and stays below the no-refresh bound.
    assert by_label["REFpb @512ms (composed)"] >= by_label["REFab @512ms (REAPER-enabled)"]
    assert by_label["REFpb @512ms (composed)"] <= by_label["no refresh (upper bound)"] + 1e-9