"""Tile-sharded megakernel benchmark: (chips x conditions) plane scaling.

The PR 7 megakernel dispatches one work unit per fleet *chunk*, so a
campaign with fewer chunks than pool workers leaves workers idle no
matter how wide the pool is.  Tile dispatch shards the plane in two
dimensions -- every (chip-chunk x condition-tile) pair is its own unit,
tile workers seek deterministically to their tile's entry state, and the
parent folds partial counts with an exact order-independent reduction --
so the same campaign exposes ``chunks x tiles`` schedulable units.

This benchmark times the chunk path and the tile path over a
deliberately chunk-starved workload (2 chunks, 8 tiles each) across a
worker sweep, and enforces two scaling gates *when the measuring host
has the cores to express them*:

* ``speedup``: tile dispatch at the widest pool must beat chunk dispatch
  at the same pool by ``--min-speedup`` (enforced when the host gives
  the widest pool at least 4 usable cores);
* ``efficiency``: the tile path's parallel efficiency from 1 worker to
  the widest pool, ``(t1 / tW) / min(W, cores)``, must stay at or above
  ``--min-efficiency`` (enforced when the host has at least 2 cores).

On hosts without enough cores the gates are recorded as skipped -- with
the reason stamped into the JSON next to the host fingerprint -- and the
exit code stays 0: a 1-core container measuring no speedup is the
expected outcome, not a regression.  The byte-identity check (serial
per-chip == chunk == tile summaries) is enforced unconditionally; it
needs no cores, only correctness.

Emits ``BENCH_tile_scaling.json`` at the repository root plus a
human-readable report under ``benchmarks/results/``.

Run standalone (CI uses ``--rounds 1``)::

    PYTHONPATH=src python benchmarks/bench_tile_scaling.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from benchutil import cpu_count, host_stamp  # noqa: E402
from repro.analysis.campaign import CharacterizationCampaign  # noqa: E402
from repro.dram.geometry import ChipGeometry  # noqa: E402

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0 / 1024.0)
SEED = 368
ITERATIONS = 3
INTERVALS_S = tuple(round(float(x), 6) for x in np.geomspace(0.064, 2.048, 16))
TEMPERATURES_C = (45.0, 55.0)
DEFAULT_OUT = REPO_ROOT / "BENCH_tile_scaling.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "tile_scaling.txt"


def summary_bytes(summary) -> str:
    return json.dumps(summary.to_json_dict(), sort_keys=True)


def run_campaign(
    chips_per_vendor: int,
    workers: int,
    chips_per_unit: int = None,
    condition_tiles: int = None,
):
    campaign = CharacterizationCampaign(
        chips_per_vendor=chips_per_vendor,
        geometry=GEOMETRY,
        iterations=ITERATIONS,
        seed=SEED,
    )
    return campaign.run(
        intervals_s=INTERVALS_S,
        temperatures_c=TEMPERATURES_C,
        backend="process" if workers > 1 else "serial",
        workers=workers,
        chips_per_unit=chips_per_unit,
        condition_tiles=condition_tiles,
    )


def identity_check(chips_per_vendor: int, chips_per_unit: int) -> bool:
    """serial per-chip == chunk == tile, on a population small enough to
    walk per-chip.  Two tilings (even and deliberately lopsided) guard
    the reduction, not just one partition."""
    serial = summary_bytes(run_campaign(chips_per_vendor, workers=1))
    chunk = summary_bytes(
        run_campaign(chips_per_vendor, workers=1, chips_per_unit=chips_per_unit)
    )
    tiled = summary_bytes(
        run_campaign(
            chips_per_vendor,
            workers=1,
            chips_per_unit=chips_per_unit,
            condition_tiles=3,
        )
    )
    max_tiled = summary_bytes(
        run_campaign(
            chips_per_vendor,
            workers=1,
            chips_per_unit=chips_per_unit,
            condition_tiles=99,
        )
    )
    return serial == chunk == tiled == max_tiled


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=1, help="timing rounds (best-of)")
    parser.add_argument(
        "--chips-per-vendor", type=int, default=200, dest="chips_per_vendor",
        help="population per vendor for the timed sweep (3 vendors)",
    )
    parser.add_argument(
        "--chips-per-unit", type=int, default=300, dest="chips_per_unit",
        help="fleet chunk size (the default leaves 2 chunks: chunk-starved)",
    )
    parser.add_argument(
        "--condition-tiles", type=int, default=8, dest="condition_tiles",
        help="condition tiles per chunk for the tile path",
    )
    parser.add_argument(
        "--workers-list",
        type=lambda text: [int(w) for w in text.split(",") if w.strip()],
        default=[1, 2, 4, 8],
        dest="workers_list",
        help="comma-separated pool widths for the tile-path sweep",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.5,
        help="required tile-vs-chunk speedup at the widest pool "
             "(enforced only with >= 4 usable cores)",
    )
    parser.add_argument(
        "--min-efficiency", type=float, default=0.70,
        help="required 1->widest parallel efficiency of the tile path "
             "(enforced only with >= 2 usable cores)",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    cores = cpu_count()
    n_chips = 3 * args.chips_per_vendor
    top_workers = max(args.workers_list)

    equivalent = identity_check(chips_per_vendor=6, chips_per_unit=4)

    # Chunk dispatch (the PR 7 path) at the widest pool: the baseline the
    # speedup gate measures against.  Same pool, same chunks -- the only
    # difference is the work-plane sharding.
    chunk_best = float("inf")
    reference = None
    for _ in range(args.rounds):
        start = time.perf_counter()
        reference = run_campaign(
            args.chips_per_vendor,
            workers=top_workers,
            chips_per_unit=args.chips_per_unit,
        )
        chunk_best = min(chunk_best, time.perf_counter() - start)

    tile_results = {}
    for workers in args.workers_list:
        best = float("inf")
        for _ in range(args.rounds):
            start = time.perf_counter()
            summary = run_campaign(
                args.chips_per_vendor,
                workers=workers,
                chips_per_unit=args.chips_per_unit,
                condition_tiles=args.condition_tiles,
            )
            best = min(best, time.perf_counter() - start)
            equivalent = equivalent and summary == reference
        tile_results[str(workers)] = {
            "seconds": best,
            "chips_per_s": n_chips / best,
        }

    tile_top = tile_results[str(top_workers)]["seconds"]
    tile_one = tile_results.get("1", {}).get("seconds")
    speedup = chunk_best / tile_top
    ideal = min(top_workers, cores)
    efficiency = (
        (tile_one / tile_top) / ideal if tile_one is not None and ideal else None
    )

    speedup_enforced = ideal >= 4
    efficiency_enforced = cores >= 2 and efficiency is not None
    gates = {
        "identity": {"required": True, "measured": equivalent, "enforced": True},
        "speedup": {
            "required": args.min_speedup,
            "measured": speedup,
            "enforced": speedup_enforced,
        },
        "efficiency": {
            "required": args.min_efficiency,
            "measured": efficiency,
            "enforced": efficiency_enforced,
        },
    }
    if not speedup_enforced:
        gates["speedup"]["skip_reason"] = (
            f"host exposes {cores} usable cores; a {top_workers}-worker "
            "speedup gate needs at least 4"
        )
    if not efficiency_enforced:
        gates["efficiency"]["skip_reason"] = (
            f"host exposes {cores} usable cores; parallel efficiency "
            "needs at least 2"
        )

    result = {
        "benchmark": "tile_scaling",
        "host": host_stamp(workers=top_workers),
        "config": {
            "chips": n_chips,
            "chips_per_vendor": args.chips_per_vendor,
            "capacity_gigabits": GEOMETRY.capacity_gigabits,
            "intervals_s": list(INTERVALS_S),
            "temperatures_c": list(TEMPERATURES_C),
            "iterations": ITERATIONS,
            "seed": SEED,
            "chips_per_unit": args.chips_per_unit,
            "condition_tiles": args.condition_tiles,
            "workers_list": list(args.workers_list),
            "rounds": args.rounds,
        },
        "chunk": {
            "workers": top_workers,
            "seconds": chunk_best,
            "chips_per_s": n_chips / chunk_best,
        },
        "tile": tile_results,
        "speedup_vs_chunk": speedup,
        "parallel_efficiency": efficiency,
        "equivalent": equivalent,
        "gates": gates,
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")

    n_conditions = len(INTERVALS_S) + len(TEMPERATURES_C) - 1
    n_chunks = -(-n_chips // args.chips_per_unit)
    report_lines = [
        "Tile-sharded megakernel: (chips x conditions) plane scaling",
        f"  workload    : {n_chips} chips in {n_chunks} chunks, "
        f"{n_conditions} conditions x {args.condition_tiles} tiles, "
        f"{ITERATIONS} iterations",
        f"  host        : {cores} usable cores "
        f"({result['host']['fingerprint']})",
        f"  chunk @ {top_workers:>2} workers: {chunk_best:.3f}s  "
        f"({n_chips / chunk_best:,.1f} chips/s)",
    ]
    for workers, row in tile_results.items():
        report_lines.append(
            f"  tile  @ {workers:>2} workers: {row['seconds']:.3f}s  "
            f"({row['chips_per_s']:,.1f} chips/s)"
        )
    report_lines.append(f"  speedup vs chunk @ {top_workers}: {speedup:.2f}x")
    if efficiency is not None:
        report_lines.append(f"  parallel efficiency 1->{top_workers}: {efficiency:.2f}")
    report_lines.append(f"  byte-identical summaries: {equivalent}")
    for name, gate in gates.items():
        if not gate["enforced"]:
            report_lines.append(f"  gate {name}: SKIPPED ({gate['skip_reason']})")
    report_lines.append(f"  json        : {args.out}")
    report = "\n".join(report_lines)
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report + "\n")
    print(report)

    if not equivalent:
        print(
            "FAIL: tile-dispatched campaign summary diverged from the "
            "chunk/serial summary",
            file=sys.stderr,
        )
        return 1
    if speedup_enforced and speedup < args.min_speedup:
        print(
            f"FAIL: tile speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if efficiency_enforced and efficiency < args.min_efficiency:
        print(
            f"FAIL: parallel efficiency {efficiency:.2f} below required "
            f"{args.min_efficiency:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
