"""Profiling hot-path benchmark: reference vs vectorized fast path.

Times the paper's standard profiling workload -- a 16-iteration pass over
the 12 standard patterns (Algorithm 1 at the Figure 9/10 configuration) on
a 2 Gbit chip -- once with the reference failure evaluation and once with
the memoized marginal-band fast path, then verifies the two runs produced
*byte-identical* profiles.  Emits ``BENCH_profiling_hotpath.json`` at the
repository root so the performance trajectory is machine-readable, plus a
human-readable report under ``benchmarks/results/``.

Run standalone (CI uses ``--rounds 1 --min-speedup 2.0``)::

    PYTHONPATH=src python benchmarks/bench_profiling_hotpath.py

Exits non-zero if the profiles diverge or the measured speedup falls below
``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.conditions import Conditions  # noqa: E402
from repro.core import BruteForceProfiler  # noqa: E402
from repro.dram.chip import SimulatedDRAMChip  # noqa: E402
from repro.dram.geometry import ChipGeometry  # noqa: E402
from repro.patterns import STANDARD_PATTERNS  # noqa: E402

GEOMETRY = ChipGeometry.from_capacity_gigabits(2.0)
CONDITIONS = Conditions(trefi=1.024, temperature=45.0)
ITERATIONS = 16
SEED = 7
DEFAULT_OUT = REPO_ROOT / "BENCH_profiling_hotpath.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "profiling_hotpath.txt"


def run_benchmark(rounds: int):
    """Best-of-``rounds`` steady-state wall time per mode.

    Both modes run against a persistent chip with the same (seed, chip_id),
    so they evaluate exactly the same simulated hardware and every round's
    profile is comparable across modes -- the function asserts byte-identity
    for every round, warmup included, and returns the combined verdict.

    The timed region is the steady-state profiling loop: one untimed warmup
    run per mode first absorbs lazy one-time model initialization (each
    deterministic pattern's first-write alignment draw, fast-path cache
    builds) that would otherwise be charged to the inner loop.  Rounds are
    interleaved ref/fast so slow CPU frequency or load drift cannot bias
    one mode.
    """
    profiler = BruteForceProfiler(patterns=STANDARD_PATTERNS, iterations=ITERATIONS)
    chips = {
        mode: SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, fast_path=mode)
        for mode in (False, True)
    }
    warm = {mode: profiler.run(chips[mode], CONDITIONS) for mode in (False, True)}
    equivalent = warm[False].to_json() == warm[True].to_json()
    best = {False: float("inf"), True: float("inf")}
    profiles = {}
    for _ in range(rounds):
        for mode in (False, True):
            start = time.perf_counter()
            profiles[mode] = profiler.run(chips[mode], CONDITIONS)
            best[mode] = min(best[mode], time.perf_counter() - start)
        equivalent = equivalent and profiles[False].to_json() == profiles[True].to_json()
    return best[False], best[True], equivalent, profiles[False]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3, help="timing rounds per mode (best-of)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if fast/reference speedup falls below this",
    )
    args = parser.parse_args(argv)

    passes = ITERATIONS * len(STANDARD_PATTERNS)
    ref_seconds, fast_seconds, equivalent, ref_profile = run_benchmark(args.rounds)
    speedup = ref_seconds / fast_seconds

    result = {
        "benchmark": "profiling_hotpath",
        "config": {
            "capacity_gigabits": GEOMETRY.capacity_gigabits,
            "weak_cells": int(
                SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED).weak_cell_count
            ),
            "patterns": len(STANDARD_PATTERNS),
            "iterations": ITERATIONS,
            "trefi_s": CONDITIONS.trefi,
            "temperature_c": CONDITIONS.temperature,
            "rounds": args.rounds,
            "seed": SEED,
        },
        "reference": {
            "seconds": ref_seconds,
            "passes_per_s": passes / ref_seconds,
        },
        "fast": {
            "seconds": fast_seconds,
            "passes_per_s": passes / fast_seconds,
        },
        "speedup": speedup,
        "equivalent": equivalent,
        "failing_cells": len(ref_profile),
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")

    report = "\n".join(
        [
            "Profiling hot path: reference vs vectorized fast path",
            f"  workload    : {ITERATIONS} iterations x {len(STANDARD_PATTERNS)} patterns "
            f"({passes} passes), {GEOMETRY.capacity_gigabits:g} Gbit chip, "
            f"trefi={CONDITIONS.trefi}s",
            f"  reference   : {ref_seconds:.3f}s  ({passes / ref_seconds:,.0f} passes/s)",
            f"  fast path   : {fast_seconds:.3f}s  ({passes / fast_seconds:,.0f} passes/s)",
            f"  speedup     : {speedup:.2f}x",
            f"  byte-identical profiles: {equivalent}",
            f"  json        : {args.out}",
        ]
    )
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report + "\n")
    print(report)

    if not equivalent:
        print("FAIL: fast-path profile differs from the reference profile", file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
