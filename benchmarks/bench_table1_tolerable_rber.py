"""Table 1: tolerable RBER and tolerable bit errors per ECC strength."""

import pytest

from repro.analysis.experiments import table1_tolerable_rber
from repro.analysis.report import ascii_table, paper_vs_measured

from conftest import run_once, save_report

#: Paper's Table 1 values for UBER = 1e-15.
PAPER_RBER = {"No ECC": 1.0e-15, "SECDED": 3.8e-9, "ECC-2": 6.9e-7}
PAPER_SECDED_ERRORS = {"512MB": 16.3, "1GB": 32.6, "2GB": 65.3, "4GB": 130.6, "8GB": 261.1}


def test_table1(benchmark):
    rows = run_once(benchmark, table1_tolerable_rber)

    table = ascii_table(
        ["ECC", "tolerable RBER", "512MB", "1GB", "2GB", "4GB", "8GB"],
        [
            [
                r.ecc_name,
                r.tolerable_rber,
                *[r.tolerable_bit_errors[s] for s in ("512MB", "1GB", "2GB", "4GB", "8GB")],
            ]
            for r in rows
        ],
        title="Table 1: tolerable RBER / bit errors at UBER = 1e-15",
    )
    by_name = {r.ecc_name: r for r in rows}
    comparisons = [
        paper_vs_measured(
            f"tolerable RBER ({name})", f"{PAPER_RBER[name]:.2g}",
            f"{by_name[name].tolerable_rber:.2g}",
        )
        for name in PAPER_RBER
    ] + [
        paper_vs_measured(
            f"SECDED tolerable errors ({size})", f"{expected}",
            f"{by_name['SECDED'].tolerable_bit_errors[size]:.1f}",
        )
        for size, expected in PAPER_SECDED_ERRORS.items()
    ]
    save_report("table1", table + "\n" + "\n".join(comparisons))

    for name, expected in PAPER_RBER.items():
        assert by_name[name].tolerable_rber == pytest.approx(expected, rel=0.06)
    for size, expected in PAPER_SECDED_ERRORS.items():
        assert by_name["SECDED"].tolerable_bit_errors[size] == pytest.approx(expected, rel=0.06)
