"""Section 6.2.3 worked example: profile longevity of ~2.3 days."""

import pytest

from repro.analysis.report import paper_vs_measured
from repro.conditions import Conditions
from repro.core.longevity import longevity_for_system
from repro.dram.vendor import VENDOR_B
from repro.ecc.model import SECDED

from conftest import run_once, save_report

GIB = 1 << 30


def test_longevity_example(benchmark):
    estimate = run_once(
        benchmark,
        lambda: longevity_for_system(
            vendor=VENDOR_B,
            capacity_bytes=2 * GIB,
            ecc=SECDED,
            target=Conditions(trefi=1.024, temperature=45.0),
            coverage=0.99,
        ),
    )
    report = "\n".join(
        [
            "Section 6.2.3: 2 GB DRAM + SECDED @ 1024 ms / 45 degC, 99% coverage",
            paper_vs_measured("tolerable failures N", "65", f"{estimate.tolerable_failures:.1f}"),
            paper_vs_measured("observed failures", "2464", f"{estimate.expected_failures:.0f}"),
            paper_vs_measured("missed failures C", "~25", f"{estimate.missed_failures:.1f}"),
            paper_vs_measured("accumulation A", "0.73 cells/h", f"{estimate.accumulation_per_hour:.3f} cells/h"),
            paper_vs_measured("profile longevity T", "2.3 days", f"{estimate.longevity_days:.2f} days"),
        ]
    )
    save_report("longevity_example", report)

    assert estimate.tolerable_failures == pytest.approx(65, rel=0.05)
    assert estimate.expected_failures == pytest.approx(2464, rel=0.15)
    assert estimate.accumulation_per_hour == pytest.approx(0.73, rel=0.05)
    assert estimate.longevity_days == pytest.approx(2.3, rel=0.15)
