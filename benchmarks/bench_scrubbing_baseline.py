"""Section 3.2 baseline comparison: passive ECC scrubbing (AVATAR-style)
vs active profiling.

The paper excludes ECC scrubbing from its evaluation because a passive
scheme "cannot make an estimate as to what fraction of all possible
failures have been detected".  This bench quantifies that criticism on the
simulated substrate: scrubbing is cheap but its coverage of the true
failing set stalls well below what active multi-pattern profiling reaches.
"""

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions
from repro.core import BruteForceProfiler, ReachProfiler, evaluate
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.ecc import EccScrubber

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
TARGET = Conditions(trefi=1.024, temperature=45.0)
SEED = 31


def run_comparison():
    truth = BruteForceProfiler(iterations=16).run(
        SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED), TARGET
    )
    results = {"brute-force (16 it)": evaluate(truth, truth.failing)}

    reach = ReachProfiler(iterations=5).run(
        SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED), TARGET
    )
    results["REAPER (reach, 5 it)"] = evaluate(reach, truth.failing)

    for rounds in (16, 64):
        report = EccScrubber(rounds=rounds).run(
            SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED), TARGET
        )
        results[f"ECC scrubbing ({rounds} rounds)"] = evaluate(
            report.failing_cells, truth.failing, runtime_seconds=report.runtime_seconds
        )
    return results


def test_scrubbing_baseline(benchmark):
    results = run_once(benchmark, run_comparison)

    table = ascii_table(
        ["mechanism", "coverage", "FPR", "runtime (s)"],
        [
            [name, f"{r.coverage:.3f}", f"{r.false_positive_rate:.3f}", f"{r.runtime_seconds:.1f}"]
            for name, r in results.items()
        ],
        title="Active profiling vs passive ECC scrubbing (truth = 16-it brute force)",
    )
    scrub64 = results["ECC scrubbing (64 rounds)"]
    reach = results["REAPER (reach, 5 it)"]
    comparisons = [
        paper_vs_measured(
            "passive scrubbing coverage",
            "cannot bound coverage (excluded from eval)",
            f"{scrub64.coverage:.1%} even after 64 rounds",
        ),
        paper_vs_measured(
            "active reach profiling coverage", ">99%", f"{reach.coverage:.1%}"
        ),
    ]
    save_report("scrubbing_baseline", table + "\n" + "\n".join(comparisons))

    # Scrubbing plateaus far below active profiling (the paper's criticism).
    assert scrub64.coverage < 0.95
    assert reach.coverage > 0.99
    # More scrub rounds help only marginally: DPD blindness is structural.
    scrub16 = results["ECC scrubbing (16 rounds)"]
    assert scrub64.coverage - scrub16.coverage < 0.15
