"""Megakernel campaign benchmark: per-condition fleet vs shared-memory grid.

Times a 10k-chip characterization sweep (3 vendors, ``--chips-per-vendor``
each, 30 log-spaced intervals plus a second temperature) through the fleet
dispatch layer twice:

* **fleet** -- the PR 5 path: per-condition ``FleetProfiler.run`` calls,
  every worker unit rebuilding its population from payload samples
  (``shared_population=False, megakernel=False``); and
* **megakernel** -- populations built once into a ``multiprocessing.shared_
  memory`` struct-of-arrays segment that workers attach to by name, with
  the whole (interval x temperature x pattern) loop fused into one
  ``FleetProfiler.run_grid`` numpy pass per unit
  (``shared_population=True, megakernel=True``).

Both modes must produce byte-identical ``CampaignSummary`` objects -- the
megakernel is draw-for-draw equivalent to the sequential walk, and the
identity is asserted every round.  The script exits non-zero on divergence
or when the measured speedup falls below ``--min-speedup``.

A ``--workers-list`` sweep then re-times the megakernel mode at each
listed pool width, so the committed JSON records how the kernel scales
with workers on the measuring host -- which is itself stamped (worker
count, usable CPU cores, platform fingerprint) so results from different
hosts are never mistaken for each other.

Emits ``BENCH_fleet_megakernel.json`` at the repository root plus a
human-readable report under ``benchmarks/results/``.

Run standalone (CI uses ``--rounds 1 --min-speedup 3.0``)::

    PYTHONPATH=src python benchmarks/bench_fleet_megakernel.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from benchutil import cpu_count, host_stamp  # noqa: E402
from repro.analysis.campaign import CharacterizationCampaign  # noqa: E402
from repro.dram.geometry import ChipGeometry  # noqa: E402

# A 1/1024-Gbit geometry keeps the weak tail ~50 cells per chip, so the
# benchmark isolates the scheduling/dispatch layers the megakernel fuses
# (the per-cell numpy work is identical in both modes and would otherwise
# drown the comparison at 10k chips).
GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0 / 1024.0)
SEED = 368
ITERATIONS = 3
INTERVALS_S = tuple(round(float(x), 6) for x in np.geomspace(0.064, 2.048, 30))
TEMPERATURES_C = (45.0, 55.0)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", 0)) or (os.cpu_count() or 1)
DEFAULT_OUT = REPO_ROOT / "BENCH_fleet_megakernel.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "fleet_megakernel.txt"


def run_campaign(
    chips_per_vendor: int, chips_per_unit: int, megakernel: bool, workers: int = 0
):
    workers = workers or WORKERS
    campaign = CharacterizationCampaign(
        chips_per_vendor=chips_per_vendor,
        geometry=GEOMETRY,
        iterations=ITERATIONS,
        seed=SEED,
    )
    return campaign.run(
        intervals_s=INTERVALS_S,
        temperatures_c=TEMPERATURES_C,
        backend="process" if workers > 1 else "serial",
        workers=workers,
        chips_per_unit=chips_per_unit,
        shared_population=megakernel,
        megakernel=megakernel,
    )


def run_benchmark(rounds: int, chips_per_vendor: int, chips_per_unit: int):
    """Best-of-``rounds`` wall time per mode, identity-checked every round.

    Rounds interleave the two modes so CPU frequency or load drift cannot
    bias one of them.  Every chip's measurement is a pure function of
    ``(seed, chip_id)``, so there is no cross-round state to warm up.
    """
    best = {"fleet": float("inf"), "megakernel": float("inf")}
    summaries = {}
    equivalent = True
    for _ in range(rounds):
        for name, mk in (("fleet", False), ("megakernel", True)):
            start = time.perf_counter()
            summaries[name] = run_campaign(chips_per_vendor, chips_per_unit, mk)
            best[name] = min(best[name], time.perf_counter() - start)
        equivalent = equivalent and summaries["fleet"] == summaries["megakernel"]
    return best["fleet"], best["megakernel"], equivalent, summaries["fleet"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=1, help="timing rounds per mode (best-of)")
    parser.add_argument(
        "--chips-per-vendor", type=int, default=3334, dest="chips_per_vendor",
        help="population per vendor (3 vendors; the default gives 10,002 chips)",
    )
    parser.add_argument(
        "--chips-per-unit", type=int, default=300, dest="chips_per_unit",
        help="fleet chunk size for both modes",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if megakernel/fleet speedup falls below this",
    )
    parser.add_argument(
        "--workers-list",
        type=lambda text: [int(w) for w in text.split(",") if w.strip()],
        default=[1, 2, 4, 8],
        dest="workers_list",
        help="comma-separated pool widths to re-time the megakernel mode at "
             "(empty string skips the sweep)",
    )
    args = parser.parse_args(argv)

    n_chips = 3 * args.chips_per_vendor
    fleet_s, mk_s, equivalent, summary = run_benchmark(
        args.rounds, args.chips_per_vendor, args.chips_per_unit
    )
    speedup = fleet_s / mk_s

    worker_sweep = {}
    for workers in args.workers_list:
        start = time.perf_counter()
        sweep_summary = run_campaign(
            args.chips_per_vendor, args.chips_per_unit, True, workers=workers
        )
        elapsed = time.perf_counter() - start
        worker_sweep[str(workers)] = {
            "seconds": elapsed,
            "chips_per_s": n_chips / elapsed,
            "equivalent": sweep_summary == summary,
        }
        equivalent = equivalent and sweep_summary == summary

    result = {
        "benchmark": "fleet_megakernel",
        "host": host_stamp(workers=WORKERS),
        "config": {
            "chips": n_chips,
            "chips_per_vendor": args.chips_per_vendor,
            "capacity_gigabits": GEOMETRY.capacity_gigabits,
            "intervals_s": list(INTERVALS_S),
            "temperatures_c": list(TEMPERATURES_C),
            "iterations": ITERATIONS,
            "seed": SEED,
            "workers": WORKERS,
            "chips_per_unit": args.chips_per_unit,
            "rounds": args.rounds,
        },
        "fleet": {
            "seconds": fleet_s,
            "chips_per_s": n_chips / fleet_s,
        },
        "megakernel": {
            "seconds": mk_s,
            "chips_per_s": n_chips / mk_s,
        },
        "speedup": speedup,
        "equivalent": equivalent,
        "measured_chips": summary.n_chips,
        "worker_sweep": worker_sweep,
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")

    report_lines = [
        "Megakernel campaign: per-condition fleet vs shared-memory grid",
        f"  workload    : {n_chips} chips (3 vendors x {args.chips_per_vendor}), "
        f"{GEOMETRY.capacity_gigabits:g} Gbit each, "
        f"{len(INTERVALS_S)} intervals + {len(TEMPERATURES_C) - 1} extra temperature, "
        f"{ITERATIONS} iterations",
        f"  host        : {cpu_count()} cores, {WORKERS} default workers, "
        f"fleet chunks of {args.chips_per_unit}",
        f"  fleet       : {fleet_s:.3f}s  ({n_chips / fleet_s:,.1f} chips/s)",
        f"  megakernel  : {mk_s:.3f}s  ({n_chips / mk_s:,.1f} chips/s)",
        f"  speedup     : {speedup:.2f}x",
        f"  byte-identical summaries: {equivalent}",
    ]
    for workers, row in worker_sweep.items():
        report_lines.append(
            f"  megakernel @ {workers:>2} workers: {row['seconds']:.3f}s  "
            f"({row['chips_per_s']:,.1f} chips/s)"
        )
    report_lines.append(f"  json        : {args.out}")
    report = "\n".join(report_lines)
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report + "\n")
    print(report)

    if not equivalent:
        print(
            "FAIL: megakernel campaign summary differs from the fleet summary",
            file=sys.stderr,
        )
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
