"""Extension: bounded-pause incremental profiling.

The paper's REAPER evaluation assumes a full-system pause per round and
flags efficient large-array profiling as an open design question
(Section 7).  This bench quantifies temporal slicing: same Eq-9 work,
same coverage, but the worst-case pause shrinks from the whole round to a
single (pattern, iteration) pass.
"""

import pytest

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions
from repro.core import IncrementalReachProfiler, ReachProfiler
from repro.core.metrics import coverage
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
TARGET = Conditions(trefi=1.024, temperature=45.0)
SEED = 55


def run_comparison():
    monolithic = ReachProfiler(iterations=5).run(
        SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED), TARGET
    )
    profiler = IncrementalReachProfiler(
        SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED), TARGET, iterations=5
    )
    sliced = profiler.run_with_gaps(gap_seconds=60.0)
    return {
        "monolithic_pause_s": monolithic.runtime_seconds,
        "sliced_max_pause_s": profiler.max_pause_seconds,
        "sliced_total_work_s": sliced.runtime_seconds,
        "mutual_coverage": coverage(sliced.failing, monolithic.failing),
        "passes": profiler.total_passes,
    }


def test_incremental_profiling(benchmark):
    result = run_once(benchmark, run_comparison)

    table = ascii_table(
        ["metric", "value"],
        [
            ["monolithic round pause (s)", f"{result['monolithic_pause_s']:.1f}"],
            ["sliced worst-case pause (s)", f"{result['sliced_max_pause_s']:.2f}"],
            ["sliced total work (s)", f"{result['sliced_total_work_s']:.1f}"],
            ["passes per round", result["passes"]],
            ["coverage of monolithic profile", f"{result['mutual_coverage']:.3f}"],
        ],
        title="Extension: bounded-pause incremental reach profiling (1 Gbit chip)",
    )
    reduction = result["monolithic_pause_s"] / result["sliced_max_pause_s"]
    comparisons = [
        paper_vs_measured(
            "worst-case pause reduction",
            "open design question (Section 7)",
            f"{reduction:.0f}x shorter pauses at identical total work",
        ),
    ]
    save_report("ext_incremental", table + "\n" + "\n".join(comparisons))

    # Same work, same findings, dramatically shorter worst-case pause.
    assert result["sliced_total_work_s"] == pytest.approx(
        result["monolithic_pause_s"], rel=0.01
    )
    assert result["mutual_coverage"] > 0.97
    assert reduction > 30.0

