"""Extension: REAPER + ECC-scrub harvesting between rounds.

Section 6.2.1 argues ECC is needed anyway to absorb the failures profiling
misses; AVATAR showed scrubbing can *observe* failures passively.  The
hybrid composes both: REAPER rounds provide the coverage guarantee, scrub
passes between rounds immediately protect the VRT newcomers that would
otherwise stay unprotected until the next round -- shrinking the exposure
window at a tiny runtime cost.
"""

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions
from repro.core import HybridMaintainer, REAPER
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.mitigation import ArchShield

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
TARGET = Conditions(trefi=2.048, temperature=45.0)
DAY = 86400.0
SEED = 404


def run_comparison():
    # REAPER-only: reprofile daily, nothing in between.
    solo_chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, max_trefi_s=2.6)
    solo_shield = ArchShield(capacity_bits=solo_chip.capacity_bits)
    solo = REAPER(solo_chip, solo_shield, TARGET, iterations=2)
    end = solo_chip.clock.now + 2.0 * DAY
    solo_rounds = 0
    while solo_chip.clock.now < end:
        solo.profile_and_update()
        solo_rounds += 1
        remaining = end - solo_chip.clock.now
        if remaining <= 0:
            break
        solo_chip.wait(min(DAY, remaining))

    # Hybrid: same cadence plus hourly scrub harvesting.
    hybrid_chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, max_trefi_s=2.6)
    hybrid_shield = ArchShield(capacity_bits=hybrid_chip.capacity_bits)
    maintainer = HybridMaintainer(
        REAPER(hybrid_chip, hybrid_shield, TARGET, iterations=2),
        reprofile_interval_seconds=DAY,
        scrub_interval_seconds=3600.0,
    )
    report = maintainer.run_for(2.0 * DAY)
    return {
        "solo_cells": solo_shield.known_cell_count,
        "solo_rounds": solo_rounds,
        "hybrid_cells": hybrid_shield.known_cell_count,
        "report": report,
    }


def test_hybrid_maintenance(benchmark):
    result = run_once(benchmark, run_comparison)
    report = result["report"]

    table = ascii_table(
        ["metric", "REAPER only", "hybrid"],
        [
            ["profiling rounds", result["solo_rounds"], report.reaper_rounds],
            ["scrub passes", 0, report.scrub_passes],
            ["protected cells", result["solo_cells"], result["hybrid_cells"]],
            ["cells from scrubbing", "-", report.cells_from_scrubbing],
            ["scrub time (s)", "-", f"{report.scrubbing_seconds:.0f}"],
        ],
        title="Extension: hybrid maintenance over 2 days at 2048 ms (1 Gbit chip)",
    )
    comparisons = [
        paper_vs_measured(
            "VRT newcomers protected before the next round",
            "unprotected until reprofiling (baseline REAPER)",
            f"{report.cells_from_scrubbing} cells harvested by scrubbing "
            f"({report.scrub_harvest_fraction:.0%} of new protection)",
        ),
    ]
    save_report("ext_hybrid_maintenance", table + "\n" + "\n".join(comparisons))

    assert report.cells_from_scrubbing > 0
    assert result["hybrid_cells"] >= result["solo_cells"]
    # Scrubbing stays cheap relative to profiling rounds.
    assert report.scrubbing_seconds < report.profiling_seconds