"""A 369-chip characterization campaign, at the paper's population scale.

The paper's headline experimental contribution is characterizing 368
LPDDR4 chips from three vendors.  368 does not split evenly three ways, so
this bench simulates 123 chips per vendor -- 369 in total, one more than
the paper's population -- keeping the vendor populations symmetric
(small-capacity chips for speed; BER statistics are capacity-independent).
It checks the population-level regularities the paper reports: monotone
BER curves per vendor, tight cross-chip spreads, and per-vendor Eq-1
temperature coefficients recovered empirically.

The campaign executes through the ``repro.runner`` process-pool backend
(``REPRO_BENCH_WORKERS`` overrides the pool size, default ``os.cpu_count()``;
set it to 0 for the serial reference path), so the timed number measures
the parallel execution engine at the paper's population scale.  The
runner's determinism contract -- parallel byte-identical to serial -- is
covered by ``tests/test_runner.py``.
"""

import os

import pytest

from repro.analysis.campaign import CharacterizationCampaign
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0 / 16.0)
CHIPS_PER_VENDOR = 123  # 3 x 123 = 369: the smallest symmetric population >= the paper's 368
PAPER_COEFFICIENTS = {"A": 0.22, "B": 0.20, "C": 0.26}
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", os.cpu_count() or 1))


def test_campaign_368(benchmark):
    campaign = CharacterizationCampaign(
        chips_per_vendor=CHIPS_PER_VENDOR, geometry=GEOMETRY, iterations=1, seed=368
    )
    summary = run_once(
        benchmark,
        lambda: campaign.run(
            intervals_s=(0.512, 1.024, 2.048),
            temperatures_c=(45.0, 55.0),
            backend="process" if WORKERS > 1 else "serial",
            workers=WORKERS,
        ),
    )

    rows = []
    for stats in summary.vendors.values():
        for trefi in summary.intervals_s:
            mean, std = stats.ber_by_interval[trefi]
            rows.append([stats.vendor, trefi * 1e3, mean, std])
    table = ascii_table(
        ["vendor", "tREFI (ms)", "BER mean", "BER std (across chips)"],
        rows,
        title=f"Campaign over {summary.n_chips} chips (3 vendors x {CHIPS_PER_VENDOR})",
    )
    comparisons = [
        paper_vs_measured(
            f"Eq 1 coefficient vendor {name}",
            f"{expected:.2f}",
            f"{summary.vendors[name].measured_temp_coefficient:.3f}",
        )
        for name, expected in PAPER_COEFFICIENTS.items()
    ]
    backend_line = (
        f"  execution: {'process pool, ' + str(WORKERS) + ' workers' if WORKERS > 1 else 'serial'}"
    )
    save_report("campaign_368", table + "\n" + "\n".join(comparisons) + "\n" + backend_line)

    assert summary.n_chips == 3 * CHIPS_PER_VENDOR
    for name, expected in PAPER_COEFFICIENTS.items():
        stats = summary.vendors[name]
        # Population-level temperature coefficient recovered within ~20%.
        assert stats.measured_temp_coefficient == pytest.approx(expected, abs=0.06)
        # BER grows with the interval.
        means = [stats.ber_by_interval[t][0] for t in summary.intervals_s]
        assert means == sorted(means)
        # Cross-chip spread is modest relative to the mean at the top interval.
        mean, std = stats.ber_by_interval[max(summary.intervals_s)]
        assert std < 0.5 * mean

