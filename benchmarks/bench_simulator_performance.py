"""Performance micro-benchmarks of the simulation substrate itself.

Unlike the figure-reproduction harnesses (which run once), these use
pytest-benchmark's repeated timing to track the hot paths a user actually
pays for: chip construction, a full profiling pass, an oracle query, and an
end-to-end mix evaluation.  Useful for catching performance regressions in
the vectorized cell-evaluation code.
"""

from repro import obs
from repro.conditions import Conditions
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.patterns import CHECKERBOARD
from repro.sysperf.dramtiming import DRAMTimings
from repro.sysperf.system import SystemSimulator
from repro.sysperf.workloads import workload_mixes

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
TARGET = Conditions(trefi=1.024, temperature=45.0)


def test_perf_chip_construction(benchmark):
    """Sampling a 1 Gbit chip's weak tail (~30k cells)."""
    counter = iter(range(10**9))

    def build():
        return SimulatedDRAMChip(geometry=GEOMETRY, seed=1, chip_id=next(counter))

    chip = benchmark(build)
    assert chip.weak_cell_count > 1000


def test_perf_profiling_pass(benchmark):
    """One write/expose/read pass over a 1 Gbit chip."""
    chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=2)

    def one_pass():
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.wait(TARGET.trefi)
        chip.enable_refresh()
        return chip.read_errors()

    errors = benchmark(one_pass)
    assert errors is not None


def test_perf_profiling_pass_instrumented(benchmark):
    """The same pass with `repro.obs` enabled.

    The pass is dominated by the vectorized cell evaluation, which is
    deliberately uninstrumented; the per-command counters must stay in
    the noise (<5 %) relative to ``test_perf_profiling_pass``.
    """
    chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=2)

    def one_pass():
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.wait(TARGET.trefi)
        chip.enable_refresh()
        return chip.read_errors()

    obs.reset()
    obs.enable()
    try:
        errors = benchmark(one_pass)
    finally:
        obs.disable()
        obs.reset()
    assert errors is not None


def test_perf_oracle_query(benchmark):
    chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=3)
    chip.wait(3600.0)
    oracle = benchmark(lambda: chip.oracle_failing_set(TARGET))
    assert len(oracle) > 0


def test_perf_system_mix_evaluation(benchmark):
    """Closed-form 4-core mix evaluation (the Figure-13 inner loop)."""
    system = SystemSimulator(timings=DRAMTimings(density_gigabits=64))
    mix = workload_mixes(1)[0]
    result = benchmark(lambda: system.simulate_mix(mix, 0.512))
    assert result.weighted_speedup > 0.0
