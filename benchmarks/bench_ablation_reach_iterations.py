"""Ablation: how many reach iterations does REAPER actually need?

DESIGN.md calls out the iteration count as the knob that trades the
Eq-9 runtime against coverage.  This bench sweeps reach iterations at the
headline +250 ms delta and reports coverage / FPR / speedup per setting,
validating the choice of 5 iterations for the paper-matching 2.5x point.
"""

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.conditions import Conditions, ReachDelta
from repro.core import BruteForceProfiler, ReachProfiler, evaluate
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
TARGET = Conditions(trefi=1.024, temperature=45.0)
ITERATION_SWEEP = (1, 2, 3, 5, 8)
SEED = 2024


def run_ablation():
    truth = BruteForceProfiler(iterations=16).run(
        SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED), TARGET
    )
    rows = []
    for iterations in ITERATION_SWEEP:
        profile = ReachProfiler(
            reach=ReachDelta(delta_trefi=0.250), iterations=iterations
        ).run(SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED), TARGET)
        score = evaluate(profile, truth.failing)
        rows.append(
            {
                "iterations": iterations,
                "coverage": score.coverage,
                "fpr": score.false_positive_rate,
                "speedup": truth.runtime_seconds / profile.runtime_seconds,
            }
        )
    return rows


def test_ablation_reach_iterations(benchmark):
    rows = run_once(benchmark, run_ablation)

    table = ascii_table(
        ["reach iterations", "coverage", "FPR", "speedup vs 16-it brute"],
        [[r["iterations"], f"{r['coverage']:.4f}", f"{r['fpr']:.3f}", f"{r['speedup']:.2f}x"] for r in rows],
        title="Ablation: reach iterations at +250 ms (target 1024 ms / 45 degC)",
    )
    at5 = next(r for r in rows if r["iterations"] == 5)
    comparisons = [
        paper_vs_measured("5-iteration operating point", ">99% cov @ 2.5x", f"{at5['coverage']:.2%} @ {at5['speedup']:.2f}x"),
    ]
    save_report("ablation_reach_iterations", table + "\n" + "\n".join(comparisons))

    coverages = [r["coverage"] for r in rows]
    speedups = [r["speedup"] for r in rows]
    # Coverage is (weakly) monotone in iterations; speedup strictly falls.
    assert all(b >= a - 0.005 for a, b in zip(coverages, coverages[1:]))
    assert speedups == sorted(speedups, reverse=True)
    # The deployed configuration meets the paper's bar.
    assert at5["coverage"] > 0.99
    assert 2.2 < at5["speedup"] < 2.9
