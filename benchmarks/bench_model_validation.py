"""Methodology validation: closed-form latency model vs event-driven sim.

The Figure-13 sweeps use the closed-form system model for speed; the
event-driven FR-FCFS bank simulator is the reference.  This bench runs both
across refresh intervals and checks they agree on the *structure* of the
refresh effect: latency strictly falls as the interval grows, no-refresh is
the floor, and the relative refresh penalty is the same order of magnitude.
"""

import numpy as np

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.sysperf.dramtiming import DRAMTimings
from repro.sysperf.memctrl import MemoryControllerSim
from repro.sysperf.system import SystemSimulator
from repro.sysperf.trace import TraceGenerator
from repro.sysperf.workloads import benchmark_by_name

from conftest import run_once, save_report

INTERVALS = (0.064, 0.128, 0.512, None)
PROFILE = "lbm_like"


def run_validation():
    timings = DRAMTimings(density_gigabits=64)
    trace = TraceGenerator(benchmark_by_name(PROFILE), seed=14).generate(4000, rate_scale=1.5)
    system = SystemSimulator(timings=timings)
    mix = (benchmark_by_name(PROFILE),) * 4
    rows = []
    for trefi in INTERVALS:
        event = MemoryControllerSim(timings, trefi_s=trefi).run(trace)
        model = system.simulate_mix(mix, trefi)
        rows.append(
            {
                "trefi": trefi,
                "event_ns": event.avg_latency_ns,
                "model_ns": model.avg_latency_ns,
            }
        )
    return rows


def test_model_validation(benchmark):
    rows = run_once(benchmark, run_validation)

    table = ascii_table(
        ["tREFI", "event-driven avg latency (ns)", "closed-form avg latency (ns)"],
        [
            ["no ref" if r["trefi"] is None else f"{r['trefi'] * 1e3:.0f}ms",
             f"{r['event_ns']:.0f}", f"{r['model_ns']:.0f}"]
            for r in rows
        ],
        title=f"Model validation on {PROFILE} (64 Gb timings)",
    )
    event = [r["event_ns"] for r in rows]
    model = [r["model_ns"] for r in rows]
    event_penalty = event[0] / event[-1] - 1.0
    model_penalty = model[0] / model[-1] - 1.0
    comparisons = [
        paper_vs_measured(
            "refresh penalty at 64 ms (event vs model)",
            "same structure",
            f"{event_penalty:.1%} vs {model_penalty:.1%}",
        ),
    ]
    save_report("model_validation", table + "\n" + "\n".join(comparisons))

    # Both models: latency falls monotonically as refresh relaxes.
    assert event == sorted(event, reverse=True)
    assert model == sorted(model, reverse=True)
    # Both see a material penalty at the default interval...
    assert event_penalty > 0.05
    assert model_penalty > 0.05
    # ...of the same order of magnitude.
    ratio = event_penalty / model_penalty
    assert 0.3 < ratio < 3.5