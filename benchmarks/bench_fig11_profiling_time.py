"""Figure 11: share of system time spent profiling vs online profiling
interval, for 32-chip modules of 8-64 Gb chips."""

from repro.analysis.experiments import fig11_profiling_time
from repro.analysis.report import ascii_table, paper_vs_measured

from conftest import run_once, save_report

INTERVALS_H = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
DENSITIES = (8, 16, 32, 64)


def test_fig11(benchmark):
    rows = run_once(
        benchmark,
        lambda: fig11_profiling_time(
            intervals_hours=INTERVALS_H, densities_gigabits=DENSITIES
        ),
    )

    table = ascii_table(
        ["interval (h)", "chip (Gb)", "brute-force", "REAPER"],
        [
            [r.profiling_interval_hours, r.chip_density_gigabits,
             f"{r.brute_fraction:.1%}", f"{r.reaper_fraction:.1%}"]
            for r in rows
        ],
        title="Figure 11: fraction of system time spent profiling (32-chip modules, 1024 ms)",
    )
    anchor = next(
        r for r in rows if r.profiling_interval_hours == 4.0 and r.chip_density_gigabits == 64
    )
    comparisons = [
        paper_vs_measured("4h / 64Gb brute-force", "22.7%", f"{anchor.brute_fraction:.1%}"),
        paper_vs_measured("4h / 64Gb REAPER", "9.1%", f"{anchor.reaper_fraction:.1%}"),
    ]
    save_report("fig11", table + "\n" + "\n".join(comparisons))

    assert abs(anchor.brute_fraction - 0.227) < 0.02
    assert abs(anchor.reaper_fraction - 0.091) < 0.01
    for row in rows:
        # REAPER always 2.5x cheaper; overhead grows with density and with
        # profiling frequency.
        assert row.reaper_fraction <= row.brute_fraction
    for hours in INTERVALS_H:
        by_density = [r.brute_fraction for r in rows if r.profiling_interval_hours == hours]
        assert by_density == sorted(by_density)
