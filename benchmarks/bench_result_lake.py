"""Columnar result-lake benchmark: lake queries vs re-parsing JSONL.

Synthesizes a campaign-scale run directory -- ``--rows`` chip-measurement
result rows (default 100k) plus a resume-style tail of re-recorded units,
exactly the shape ``python -m repro campaign`` appends -- compacts it
into a :class:`repro.lake.ResultLake`, and then times the same canonical
run summary computed two ways:

* **jsonl**: :func:`repro.lake.summary_from_run_dir` -- stream-parse the
  source ``results.jsonl``, fold later-rows-win, aggregate.
* **lake**: :func:`repro.lake.summary_from_lake` -- load the columnar
  npz segment and aggregate vectorized.

The two summaries must be **byte-identical** (``json.dumps`` with sorted
keys) every round; the script exits non-zero on divergence or when the
lake speedup falls below ``--min-speedup``.

Emits ``BENCH_result_lake.json`` at the repository root plus a
human-readable report under ``benchmarks/results/``.

Run standalone (CI uses ``--rounds 2 --min-speedup 10.0``)::

    PYTHONPATH=src python benchmarks/bench_result_lake.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lake import (  # noqa: E402
    ResultLake,
    summary_from_lake,
    summary_from_run_dir,
)

SEED = 368
VENDORS = ("A", "B", "C")
INTERVALS_S = (0.512, 1.024, 2.048)
TEMPERATURES_C = (45.0, 55.0)
RESUME_FRACTION = 0.01  # re-recorded units, exercising later-rows-win
FAILED_FRACTION = 0.002
DEFAULT_OUT = REPO_ROOT / "BENCH_result_lake.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "result_lake.txt"


def synthesize_run_dir(run_dir: pathlib.Path, rows: int) -> int:
    """Write a campaign-shaped ``results.jsonl`` with ``rows`` raw rows."""
    rng = random.Random(SEED)
    run_dir.mkdir(parents=True)

    def chip_row(index: int) -> dict:
        if rng.random() < FAILED_FRACTION:
            return {
                "unit_id": f"chip-{index:07d}",
                "status": "failed",
                "attempts": 2,
                "elapsed_s": rng.random() * 0.05,
                "error": {
                    "type": "MeasurementError",
                    "message": f"chip {index} did not settle",
                    "traceback": "Traceback (most recent call last): ...",
                },
            }
        value = {
            "chip_id": index,
            "vendor": VENDORS[index % len(VENDORS)],
            "interval_failures": [
                [interval, float(rng.randint(0, 40) * (1 + k))]
                for k, interval in enumerate(INTERVALS_S)
            ],
            "temperature_failures": [
                [temp, float(rng.randint(0, 60))] for temp in TEMPERATURES_C
            ],
        }
        return {
            "unit_id": f"chip-{index:07d}",
            "status": "ok",
            "attempts": 1,
            "elapsed_s": 0.001 + rng.random() * 0.2,
            "value": value,
        }

    resumed = int(rows * RESUME_FRACTION)
    fresh = rows - resumed
    with open(run_dir / "results.jsonl", "w", encoding="utf-8") as handle:
        for index in range(fresh):
            handle.write(json.dumps(chip_row(index), sort_keys=True) + "\n")
        for _ in range(resumed):  # resume tail: later rows win
            handle.write(
                json.dumps(chip_row(rng.randrange(fresh)), sort_keys=True) + "\n"
            )
    (run_dir / "manifest.json").write_text(
        json.dumps(
            {
                "fingerprint": "bench" * 8,
                "status": "complete",
                "kind": "bench-result-lake",
                "n_units": fresh,
                "capacity_bits": 67108864,
            },
            sort_keys=True,
        ),
        encoding="utf-8",
    )
    return rows


def run_benchmark(run_dir: pathlib.Path, lake: ResultLake, run_id: str, rounds: int):
    """Best-of-``rounds`` per path, identity-checked every round."""
    best = {"jsonl": float("inf"), "lake": float("inf")}
    identical = True
    for _ in range(rounds):
        start = time.perf_counter()
        from_jsonl = summary_from_run_dir(run_dir)
        best["jsonl"] = min(best["jsonl"], time.perf_counter() - start)

        start = time.perf_counter()
        from_lake = summary_from_lake(lake, run_id)
        best["lake"] = min(best["lake"], time.perf_counter() - start)

        identical = identical and (
            json.dumps(from_jsonl, sort_keys=True)
            == json.dumps(from_lake, sort_keys=True)
        )
    return best["jsonl"], best["lake"], identical, from_jsonl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=100_000, help="raw result rows to synthesize")
    parser.add_argument("--rounds", type=int, default=3, help="timing rounds per path (best-of)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if lake/jsonl speedup falls below this",
    )
    args = parser.parse_args(argv)

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_result_lake_"))
    try:
        run_dir = workdir / "run"
        synthesize_run_dir(run_dir, args.rows)
        jsonl_bytes = (run_dir / "results.jsonl").stat().st_size

        lake = ResultLake(workdir / "lake")
        compact_start = time.perf_counter()
        report = lake.compact_run_dir(run_dir)
        compact_s = time.perf_counter() - compact_start
        segment_bytes = lake.segment_path(report.run_id).stat().st_size

        jsonl_s, lake_s, identical, summary = run_benchmark(
            run_dir, lake, report.run_id, args.rounds
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    speedup = jsonl_s / lake_s

    result = {
        "benchmark": "result_lake",
        "config": {
            "rows": args.rows,
            "units": report.units,
            "observations": report.observations,
            "vendors": list(VENDORS),
            "intervals_s": list(INTERVALS_S),
            "temperatures_c": list(TEMPERATURES_C),
            "resume_fraction": RESUME_FRACTION,
            "failed_fraction": FAILED_FRACTION,
            "rounds": args.rounds,
            "seed": SEED,
        },
        "jsonl": {
            "seconds": jsonl_s,
            "rows_per_s": args.rows / jsonl_s,
            "bytes": jsonl_bytes,
        },
        "lake": {
            "seconds": lake_s,
            "rows_per_s": args.rows / lake_s,
            "bytes": segment_bytes,
            "compaction_seconds": compact_s,
        },
        "speedup": speedup,
        "compression_ratio": jsonl_bytes / segment_bytes,
        "byte_identical": identical,
        "summary_units": summary["units"],
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")

    report_text = "\n".join(
        [
            "Columnar result lake: summary queries vs re-parsing JSONL",
            f"  workload    : {args.rows:,} result rows "
            f"({report.units:,} units, {report.observations:,} observations)",
            f"  jsonl       : {jsonl_s:.3f}s  ({args.rows / jsonl_s:,.0f} rows/s, "
            f"{jsonl_bytes / 1e6:.1f} MB)",
            f"  lake        : {lake_s:.3f}s  ({args.rows / lake_s:,.0f} rows/s, "
            f"{segment_bytes / 1e6:.1f} MB, compacted in {compact_s:.3f}s)",
            f"  speedup     : {speedup:.2f}x",
            f"  compression : {jsonl_bytes / segment_bytes:.2f}x",
            f"  byte-identical summaries: {identical}",
            f"  json        : {args.out}",
        ]
    )
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report_text + "\n")
    print(report_text)

    if not identical:
        print(
            "FAIL: lake summary differs from the JSONL-derived summary",
            file=sys.stderr,
        )
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
