"""Figure 2: aggregate retention failure rates vs refresh interval,
with the unique / repeat / non-repeat split (Observation 1)."""

from repro.analysis.characterization import fig2_retention_failure_rates
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

INTERVALS = (0.128, 0.256, 0.512, 1.024, 2.048, 4.096)
GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)


def test_fig02(benchmark):
    rows = run_once(
        benchmark,
        lambda: fig2_retention_failure_rates(
            intervals_s=INTERVALS,
            chips_per_vendor=2,
            geometry=GEOMETRY,
            iterations=2,
        ),
    )

    table = ascii_table(
        ["vendor", "tREFI (ms)", "BER total", "BER unique", "BER repeat", "BER non-repeat"],
        [
            [r.vendor, r.trefi_s * 1e3, r.ber_total, r.ber_unique, r.ber_repeat, r.ber_nonrepeat]
            for r in rows
        ],
        title="Figure 2: retention failure rates by refresh interval",
    )
    vendor_b_1024 = next(r for r in rows if r.vendor == "B" and r.trefi_s == 1.024)
    top_rows = [r for r in rows if r.trefi_s == max(INTERVALS)]
    mean_reobserved = sum(r.reobserved_fraction for r in top_rows) / len(top_rows)
    comparisons = [
        paper_vs_measured(
            "BER @1024ms (vendor B)", "~1.4e-7 (2464 cells / 2GB)", f"{vendor_b_1024.ber_total:.2g}"
        ),
        paper_vs_measured(
            "Obs 1: lower-interval cells failing again at top interval",
            "large majority",
            f"{mean_reobserved:.0%}",
        ),
    ]
    save_report("fig02", table + "\n" + "\n".join(comparisons))

    # BER rises monotonically with the refresh interval for every vendor.
    for vendor in "ABC":
        series = [r.ber_total for r in rows if r.vendor == vendor]
        assert series == sorted(series)
    # The paper's anchor: vendor B near 1.4e-7 at 1024 ms.
    assert 0.5e-7 < vendor_b_1024.ber_total < 3.0e-7
    # Observation 1: cells observed at lower intervals overwhelmingly fail
    # again at the higher interval.
    assert mean_reobserved > 0.75
