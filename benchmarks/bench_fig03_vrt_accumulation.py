"""Figure 3: failure discovery over six days of brute-force profiling at
2048 ms -- steady-state VRT-driven accumulation (Observation 2)."""

from repro.analysis.characterization import fig3_discovery_timeline
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

#: 1 Gbit chip (1/16 of the paper's 2 GB device): the paper's steady-state
#: rate of 1 cell / 20 s scales to 1 cell / 320 s here.
GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)
CAPACITY_SCALE = 16.0


def test_fig03(benchmark):
    result = run_once(
        benchmark,
        lambda: fig3_discovery_timeline(
            trefi_s=2.048,
            iterations=480,
            span_days=6.0,
            geometry=GEOMETRY,
        ),
    )

    checkpoints = [p for p in result.points if p.iteration % 60 == 0]
    table = ascii_table(
        ["iteration", "day", "unique new", "repeat", "cumulative"],
        [[p.iteration, f"{p.time_days:.2f}", p.unique_new, p.repeat, p.cumulative] for p in checkpoints],
        title="Figure 3: discovery timeline at 2048 ms / 45 degC (1 Gbit chip)",
    )
    scaled_rate = result.steady_state_rate_per_hour * CAPACITY_SCALE
    onset_hours = result.steady_state_onset_days() * 24.0
    comparisons = [
        paper_vs_measured(
            "steady-state accumulation (2 GB-equivalent)",
            "1 cell / 20 s (180/h)",
            f"1 cell / {3600.0 / scaled_rate:.0f} s ({scaled_rate:.0f}/h)",
        ),
        paper_vs_measured(
            "time to reach the steady state", "~10 hours", f"~{onset_hours:.0f} hours"
        ),
        paper_vs_measured("cumulative set keeps growing", "yes", "yes"),
    ]
    save_report("fig03", table + "\n" + "\n".join(comparisons))

    # Steady state: new failures keep arriving at a roughly constant rate.
    assert result.steady_state_rate_per_hour > 0.0
    # Paper: ~180 cells/h at 2 GB scale; allow 2x either way for run noise.
    assert 90.0 < scaled_rate < 360.0
    # The cumulative curve never saturates (Observation 2).
    last_quarter = result.points[3 * len(result.points) // 4 :]
    assert last_quarter[-1].cumulative > last_quarter[0].cumulative
    # Per-iteration failing set stays roughly constant while cumulative grows.
    import numpy as np

    sizes = [p.unique_new + p.repeat for p in result.points[40:]]
    assert np.std(sizes) < 0.5 * np.mean(sizes)
    # The base set is exhausted within the first day (paper: ~10 hours).
    assert onset_hours < 36.0
