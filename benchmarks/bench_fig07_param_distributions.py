"""Figure 7: per-cell (mu, sigma) distributions shift left as temperature
rises."""

from repro.analysis.characterization import fig7_parameter_distributions
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)


def test_fig07(benchmark):
    rows = run_once(
        benchmark,
        lambda: fig7_parameter_distributions(
            temperatures_c=(40.0, 45.0, 50.0, 55.0), geometry=GEOMETRY
        ),
    )

    table = ascii_table(
        ["ambient (degC)", "mu median (s)", "sigma median (ms)", "mu mean (s)", "sigma mean (ms)"],
        [
            [r.temperature_c, r.mu_median_s, r.sigma_median_s * 1e3, r.mu_mean_s, r.sigma_mean_s * 1e3]
            for r in rows
        ],
        title="Figure 7: failure-CDF parameter distributions vs temperature",
    )
    comparisons = [
        paper_vs_measured("mu distribution vs temperature", "shifts left", "monotone decreasing"),
        paper_vs_measured("sigma distribution vs temperature", "shifts left (narrower)", "monotone decreasing"),
    ]
    save_report("fig07", table + "\n" + "\n".join(comparisons))

    mu_series = [r.mu_median_s for r in rows]
    sigma_series = [r.sigma_median_s for r in rows]
    assert mu_series == sorted(mu_series, reverse=True)
    assert sigma_series == sorted(sigma_series, reverse=True)
