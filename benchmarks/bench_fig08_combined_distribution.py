"""Figure 8: combined failure probability vs refresh interval across
temperatures, and the ~1 s <-> ~10 degC equivalence."""

import numpy as np

from repro.analysis.characterization import fig8_combined_distribution
from repro.analysis.report import ascii_table, paper_vs_measured
from repro.dram.geometry import ChipGeometry

from conftest import run_once, save_report

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0)


def test_fig08(benchmark):
    result = run_once(
        benchmark,
        lambda: fig8_combined_distribution(
            temperatures_c=(40.0, 45.0, 50.0, 55.0), geometry=GEOMETRY
        ),
    )

    mid_cols = np.linspace(0, len(result.intervals_s) - 1, 6).astype(int)
    table = ascii_table(
        ["ambient"] + [f"{result.intervals_s[j]:.2f}s" for j in mid_cols],
        [
            [f"{temp:.0f}degC"] + [f"{result.mean_probability[i, j]:.3f}" for j in mid_cols]
            for i, temp in enumerate(result.temperatures_c)
        ],
        title="Figure 8: combined per-cell failure probability",
    )
    t45 = result.interval_for_probability(45.0, 0.5)
    t55 = result.interval_for_probability(55.0, 0.5)
    equivalence = t45 - t55
    comparisons = [
        paper_vs_measured(
            "interval shift equivalent to +10 degC @45 degC",
            "~1 s",
            f"{equivalence:.2f} s",
        ),
    ]
    save_report("fig08", table + "\n" + "\n".join(comparisons))

    # Failure probability rises with both knobs.
    assert np.all(np.diff(result.mean_probability, axis=1) >= -1e-9)
    mid = len(result.intervals_s) // 2
    assert np.all(np.diff(result.mean_probability[:, mid]) >= -1e-9)
    # The paper's headline equivalence: ~1 s of interval per ~10 degC.
    assert 0.4 < equivalence < 1.6
