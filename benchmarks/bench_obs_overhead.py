"""Observability overhead benchmark: profiling hot path with metrics on.

Times the standard profiling workload (Algorithm 1, fast path) with the
observability layer disabled and enabled in its ``--metrics``
configuration (process-wide registry recording, no event file), and
verifies both that the profiles stay *byte-identical* (the
zero-perturbation contract) and that the enabled-instrumentation overhead
stays under ``--max-overhead`` (default 5%).  Instrumentation sits at
command/iteration granularity, never inside the vectorized cell loops, so
the expected overhead is low single digits of a percent.

Measurement methodology, chosen to survive noisy shared runners:

* every timed sample is a fixed number of back-to-back runs on a *fresh*
  chip (same seed), after one untimed warmup run -- the simulation is
  deterministic, so every sample of both modes times the exact same work;
* samples use CPU time (``time.process_time``), which a co-tenant
  stealing the core cannot inflate the way wall time is inflated;
* each round measures an (off, on) pair in alternating order and the
  reported overhead is the **ratio of the per-mode minima** -- the
  fastest observed sample is the closest estimate of the true cost, and
  co-tenant noise can only inflate samples, never deflate them, so extra
  rounds monotonically sharpen the estimate;
* if the reading still exceeds the gate after the requested rounds,
  extra rounds (bounded) keep sampling -- noise gets more chances to
  land a clean sample, while a real regression stays above the gate.

Emits ``BENCH_obs_overhead.json`` at the repository root plus a
human-readable report under ``benchmarks/results/``.

Run standalone (CI uses ``--rounds 3 --max-overhead 0.05``)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

Exits non-zero if the profiles diverge or the overhead exceeds the gate.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.conditions import Conditions  # noqa: E402
from repro.core import BruteForceProfiler  # noqa: E402
from repro.dram.chip import SimulatedDRAMChip  # noqa: E402
from repro.dram.geometry import ChipGeometry  # noqa: E402
from repro.patterns import STANDARD_PATTERNS  # noqa: E402

GEOMETRY = ChipGeometry.from_capacity_gigabits(4.0)
CONDITIONS = Conditions(trefi=1.024, temperature=45.0)
ITERATIONS = 8
REPEATS = 3
SEED = 7
DEFAULT_OUT = REPO_ROOT / "BENCH_obs_overhead.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "obs_overhead.txt"


def run_benchmark(rounds: int, gate: float = None, max_rounds: int = None):
    """Measure (off seconds, on seconds, overhead, equivalent, rounds).

    See the module docstring for the methodology.  ``gate`` triggers
    adaptive extra rounds (up to ``max_rounds``, default ``4 * rounds``)
    while the median overhead sits above it.
    """
    if max_rounds is None:
        max_rounds = rounds * 4
    profiler = BruteForceProfiler(patterns=STANDARD_PATTERNS, iterations=ITERATIONS)

    def one_sample(mode: bool):
        chip = SimulatedDRAMChip(geometry=GEOMETRY, seed=SEED, fast_path=True)
        if mode:
            obs.reset()
            obs.enable()
        try:
            profiler.run(chip, CONDITIONS)  # untimed: lazy init, caches
            gc.collect()
            start = time.process_time()
            for _ in range(REPEATS):
                profile = profiler.run(chip, CONDITIONS)
            return (time.process_time() - start) / REPEATS, profile
        finally:
            if mode:
                obs.disable()
                obs.reset()

    samples = {False: [], True: []}
    equivalent = True
    completed = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while True:
            order = (False, True) if completed % 2 == 0 else (True, False)
            times, profiles = {}, {}
            for mode in order:
                times[mode], profiles[mode] = one_sample(mode)
                samples[mode].append(times[mode])
            equivalent = (
                equivalent and profiles[False].to_json() == profiles[True].to_json()
            )
            completed += 1
            overhead = min(samples[True]) / min(samples[False]) - 1.0
            if completed >= rounds and (
                gate is None or overhead <= gate or completed >= max_rounds
            ):
                break
    finally:
        if gc_was_enabled:
            gc.enable()
    off_seconds = min(samples[False])
    on_seconds = min(samples[True])
    return off_seconds, on_seconds, on_seconds / off_seconds - 1.0, equivalent, completed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5, help="off/on round pairs (median-of)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="exit non-zero if enabled-instrumentation overhead exceeds this fraction",
    )
    args = parser.parse_args(argv)

    passes = ITERATIONS * len(STANDARD_PATTERNS)
    off_seconds, on_seconds, overhead, equivalent, rounds_run = run_benchmark(
        args.rounds, gate=args.max_overhead
    )

    result = {
        "benchmark": "obs_overhead",
        "config": {
            "capacity_gigabits": GEOMETRY.capacity_gigabits,
            "patterns": len(STANDARD_PATTERNS),
            "iterations": ITERATIONS,
            "trefi_s": CONDITIONS.trefi,
            "temperature_c": CONDITIONS.temperature,
            "rounds_requested": args.rounds,
            "rounds_run": rounds_run,
            "repeats_per_sample": REPEATS,
            "seed": SEED,
            "max_overhead": args.max_overhead,
        },
        "disabled": {"cpu_seconds": off_seconds, "passes_per_s": passes / off_seconds},
        "enabled": {"cpu_seconds": on_seconds, "passes_per_s": passes / on_seconds},
        "overhead_fraction": overhead,
        "equivalent": equivalent,
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")

    report = "\n".join(
        [
            "Observability overhead on the profiling hot path",
            f"  workload    : {ITERATIONS} iterations x {len(STANDARD_PATTERNS)} patterns "
            f"({passes} passes), {GEOMETRY.capacity_gigabits:g} Gbit chip, "
            f"trefi={CONDITIONS.trefi}s",
            f"  obs off     : {off_seconds:.3f}s CPU  ({passes / off_seconds:,.0f} passes/s)",
            f"  obs on      : {on_seconds:.3f}s CPU  ({passes / on_seconds:,.0f} passes/s)",
            f"  overhead    : {overhead:+.2%} (gate {args.max_overhead:.0%}, "
            f"best of {rounds_run} rounds)",
            f"  byte-identical profiles: {equivalent}",
            f"  json        : {args.out}",
        ]
    )
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report + "\n")
    print(report)

    if not equivalent:
        print("FAIL: instrumented profile differs from the baseline profile", file=sys.stderr)
        return 1
    if overhead > args.max_overhead:
        print(
            f"FAIL: overhead {overhead:.2%} above allowed {args.max_overhead:.2%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
