"""Fleet-batched campaign benchmark: per-chip vs chunked fleet dispatch.

Times the paper-scale 369-chip characterization campaign (3 vendors x 123
chips, the ``bench_campaign_368_chips`` configuration) end to end through
the process-pool backend, once with the per-chip path -- one pool
round-trip and one single-chip measurement per chip -- and once with
fleet-batched dispatch: chips shipped to workers in chunks of
``--chips-per-unit``, each chunk evaluated by the fused
:func:`repro.runner.measure_fleet` kernel (one stacked numpy/ndtr pass per
read across the whole chunk, one chamber settle replayed across members).
Both runs must produce byte-identical ``CampaignSummary`` objects; the
script exits non-zero on divergence or when the measured speedup falls
below ``--min-speedup``.

Emits ``BENCH_fleet_campaign.json`` at the repository root plus a
human-readable report under ``benchmarks/results/``.

Run standalone (CI uses ``--rounds 1 --min-speedup 2.0``)::

    PYTHONPATH=src python benchmarks/bench_fleet_campaign.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.campaign import CharacterizationCampaign  # noqa: E402
from repro.dram.geometry import ChipGeometry  # noqa: E402

GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0 / 64.0)
CHIPS_PER_VENDOR = 123  # 3 x 123 = 369, the smallest symmetric population >= 368
SEED = 368
ITERATIONS = 2
INTERVALS_S = (0.512, 1.024, 2.048)
TEMPERATURES_C = (45.0, 55.0)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", 0)) or (os.cpu_count() or 1)
DEFAULT_OUT = REPO_ROOT / "BENCH_fleet_campaign.json"
REPORT_PATH = REPO_ROOT / "benchmarks" / "results" / "fleet_campaign.txt"


def run_campaign(chips_per_unit):
    campaign = CharacterizationCampaign(
        chips_per_vendor=CHIPS_PER_VENDOR,
        geometry=GEOMETRY,
        iterations=ITERATIONS,
        seed=SEED,
    )
    return campaign.run(
        intervals_s=INTERVALS_S,
        temperatures_c=TEMPERATURES_C,
        backend="process" if WORKERS > 1 else "serial",
        workers=WORKERS,
        chips_per_unit=chips_per_unit,
    )


def run_benchmark(rounds: int, chips_per_unit: int):
    """Best-of-``rounds`` wall time per mode, identity-checked every round.

    Rounds are interleaved per-chip/fleet so CPU frequency or load drift
    cannot bias one mode.  Every chip's measurement is a pure function of
    ``(seed, chip_id)``, so there is no cross-round state to warm up --
    each campaign run pays its full cost, which is exactly what the
    dispatch layer being measured amortizes.
    """
    modes = {"per_chip": None, "fleet": chips_per_unit}
    best = {name: float("inf") for name in modes}
    summaries = {}
    equivalent = True
    for _ in range(rounds):
        for name, cpu in modes.items():
            start = time.perf_counter()
            summaries[name] = run_campaign(cpu)
            best[name] = min(best[name], time.perf_counter() - start)
        equivalent = equivalent and summaries["per_chip"] == summaries["fleet"]
    return best["per_chip"], best["fleet"], equivalent, summaries["per_chip"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=2, help="timing rounds per mode (best-of)")
    parser.add_argument(
        "--chips-per-unit", type=int, default=32, dest="chips_per_unit",
        help="fleet chunk size for the batched mode",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero if fleet/per-chip speedup falls below this",
    )
    args = parser.parse_args(argv)

    n_chips = 3 * CHIPS_PER_VENDOR
    per_chip_s, fleet_s, equivalent, summary = run_benchmark(
        args.rounds, args.chips_per_unit
    )
    speedup = per_chip_s / fleet_s

    result = {
        "benchmark": "fleet_campaign",
        "config": {
            "chips": n_chips,
            "chips_per_vendor": CHIPS_PER_VENDOR,
            "capacity_gigabits": GEOMETRY.capacity_gigabits,
            "intervals_s": list(INTERVALS_S),
            "temperatures_c": list(TEMPERATURES_C),
            "iterations": ITERATIONS,
            "seed": SEED,
            "workers": WORKERS,
            "chips_per_unit": args.chips_per_unit,
            "rounds": args.rounds,
        },
        "per_chip": {
            "seconds": per_chip_s,
            "chips_per_s": n_chips / per_chip_s,
        },
        "fleet": {
            "seconds": fleet_s,
            "chips_per_s": n_chips / fleet_s,
        },
        "speedup": speedup,
        "equivalent": equivalent,
        "measured_chips": summary.n_chips,
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")

    report = "\n".join(
        [
            "Fleet-batched campaign: per-chip vs chunked fleet dispatch",
            f"  workload    : {n_chips} chips (3 vendors x {CHIPS_PER_VENDOR}), "
            f"{GEOMETRY.capacity_gigabits:g} Gbit each, "
            f"{len(INTERVALS_S)} intervals + {len(TEMPERATURES_C) - 1} extra temperature",
            f"  execution   : {WORKERS} workers, fleet chunks of {args.chips_per_unit}",
            f"  per-chip    : {per_chip_s:.3f}s  ({n_chips / per_chip_s:,.1f} chips/s)",
            f"  fleet       : {fleet_s:.3f}s  ({n_chips / fleet_s:,.1f} chips/s)",
            f"  speedup     : {speedup:.2f}x",
            f"  byte-identical summaries: {equivalent}",
            f"  json        : {args.out}",
        ]
    )
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report + "\n")
    print(report)

    if not equivalent:
        print("FAIL: fleet campaign summary differs from the per-chip summary", file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
