"""Ablation: sensitivity of the Figure-13 story to the reprofiling cadence.

The paper's end-to-end numbers depend on how early the system reprofiles
relative to the Eq-7 longevity (an assumption the paper does not publish).
This bench sweeps the safety factor and verifies the qualitative story is
robust: at every setting, ideal > REAPER > brute force at long intervals,
and brute force crosses into net loss before REAPER does.
"""

import numpy as np

from repro.analysis.report import ascii_table, paper_vs_measured
from repro.sysperf.overhead import EndToEndEvaluator, ProfilerKind
from repro.sysperf.workloads import workload_mixes

from conftest import run_once, save_report

SAFETY_FACTORS = (0.25, 0.5, 1.0)
TREFIS = (1.024, 1.280, 1.536)


def run_sweep():
    mixes = workload_mixes(8)
    rows = []
    for safety in SAFETY_FACTORS:
        evaluator = EndToEndEvaluator(
            chip_density_gigabits=64, reprofile_safety_factor=safety
        )
        for trefi in TREFIS:
            means = {}
            for kind in ProfilerKind:
                values = [
                    evaluator.evaluate_mix(mix, trefi, kind).performance_improvement
                    for mix in mixes
                ]
                means[kind] = float(np.mean(values))
            rows.append({"safety": safety, "trefi": trefi, "means": means})
    return rows


def test_ablation_safety_factor(benchmark):
    rows = run_once(benchmark, run_sweep)

    table = ascii_table(
        ["safety", "tREFI (ms)", "ideal", "REAPER", "brute-force"],
        [
            [
                r["safety"],
                r["trefi"] * 1e3,
                f"{r['means'][ProfilerKind.IDEAL]:+.1%}",
                f"{r['means'][ProfilerKind.REAPER]:+.1%}",
                f"{r['means'][ProfilerKind.BRUTE_FORCE]:+.1%}",
            ]
            for r in rows
        ],
        title="Ablation: reprofiling safety factor vs end-to-end performance (64 Gb)",
    )
    comparisons = [
        paper_vs_measured(
            "ordering ideal > REAPER > brute at long intervals",
            "holds (Fig 13)",
            "holds at every safety factor",
        ),
    ]
    save_report("ablation_safety_factor", table + "\n" + "\n".join(comparisons))

    for row in rows:
        means = row["means"]
        assert means[ProfilerKind.IDEAL] >= means[ProfilerKind.REAPER] - 1e-9
        assert means[ProfilerKind.REAPER] >= means[ProfilerKind.BRUTE_FORCE] - 1e-9
    # Brute force always collapses at 1536 ms; REAPER degrades far less.
    for safety in SAFETY_FACTORS:
        at_1536 = next(r for r in rows if r["safety"] == safety and r["trefi"] == 1.536)
        gap = at_1536["means"][ProfilerKind.REAPER] - at_1536["means"][ProfilerKind.BRUTE_FORCE]
        assert gap > 0.05
    # Eager reprofiling (small safety factor) costs more overhead.
    eager = next(r for r in rows if r["safety"] == 0.25 and r["trefi"] == 1.280)
    lazy = next(r for r in rows if r["safety"] == 1.0 and r["trefi"] == 1.280)
    assert (
        eager["means"][ProfilerKind.BRUTE_FORCE] <= lazy["means"][ProfilerKind.BRUTE_FORCE]
    )
