#!/usr/bin/env python3
"""Lint a Prometheus/OpenMetrics text exposition file.

A deliberately small checker for CI: verifies that every line of the
exposition is either a well-formed comment (``# TYPE|HELP|UNIT ...``) or a
well-formed sample (``name{label="value",...} number``), that the document
ends with the OpenMetrics ``# EOF`` terminator, and that each ``# TYPE``
appears at most once per metric name.  It is a grammar check, not a full
OpenMetrics validator -- enough to catch a malformed exporter before a real
scraper does.

Usage::

    python scripts/check_promtext.py <file> [<file> ...]

Exits non-zero on the first violation.
"""

from __future__ import annotations

import re
import sys

COMMENT = re.compile(r"^# (TYPE|HELP|UNIT) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*$")
SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" -?([0-9][0-9.eE+\-]*|\.[0-9]+|NaN|\+Inf|-Inf)$"
)


def check_file(path: str) -> int:
    """Returns the number of sample lines; raises ValueError on violation."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError(f"{path}: missing trailing '# EOF' terminator")
    samples = 0
    typed = set()
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            raise ValueError(f"{path}:{lineno}: empty line inside exposition")
        if line.startswith("#"):
            if not COMMENT.match(line):
                raise ValueError(f"{path}:{lineno}: malformed comment: {line!r}")
            kind, name = line.split(" ", 3)[1:3]
            if kind == "TYPE":
                if name in typed:
                    raise ValueError(f"{path}:{lineno}: duplicate TYPE for {name}")
                typed.add(name)
            continue
        if not SAMPLE.match(line):
            raise ValueError(f"{path}:{lineno}: malformed sample: {line!r}")
        samples += 1
    if not samples:
        raise ValueError(f"{path}: no sample lines")
    return samples


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv:
        try:
            samples = check_file(path)
        except (OSError, ValueError) as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(f"ok: {path} ({samples} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
